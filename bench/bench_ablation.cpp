//===- bench_ablation.cpp - Design-choice ablations ------------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
// Ablates the paper's engineering claims on terminator-style workloads:
//   - Section 4.2: splitting the Return relation (ReturnA/ReturnB) versus
//     conjoining the two summary BDDs directly,
//   - Section 4.3: the Relevant-PC frontier restriction versus plain
//     entry-forward iteration,
//   - solver-level early termination on positive instances,
//   - the evaluator's semi-naive (delta) core versus the paper's literal
//     naive semantics, on the terminator and bluetooth suites,
//   - the Coudert–Madre constrain-based frontier product versus the plain
//     relational product (same semi-naive core, knob off),
//   - parallel SCC scheduling (--threads) on multi-SCC calculus systems
//     at 1/2/4/8 workers, gated on bit-identical counts/rounds/BDD sizes,
//   - intra-SCC disjunct parallelism (threshold 1, always armed) on
//     bluetooth and terminator at the same thread counts, gated on
//     bit-identical verdicts/rounds/summary sizes AND on the parallel
//     path actually engaging (RoundsParallel >= 1 whenever threads > 1),
//   - the per-procedure summary split (one Summary_<group> relation per
//     call-graph SCC, the default) versus the monolithic Summary relation
//     (--monolithic-summary), gated on identical verdicts, a node-for-node
//     identical summary union, call-graph-wide condensation (> 4 on the
//     restructured terminator/bluetooth workloads), and SCC tasks actually
//     landing on the worker pool at threads=4.
//
// Pass --smoke to shrink every workload for a seconds-long CI run,
// --cache-bits n to size the BDD computed cache for every solve, and
// --json FILE to additionally record every row (verdict, rounds, node and
// peak counters) as a BENCH_*.json report — CI runs the smoke at two cache
// sizes and fails on any verdict drift between the reports.
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "fpcalc/Evaluator.h"
#include "fpcalc/Parser.h"
#include "gen/Workloads.h"
#include "support/Timer.h"

#include <cmath>
#include <cstring>

using namespace getafix;
using namespace getafix::bench;

namespace {

/// Knobs shared by every solve in this driver.
unsigned CacheBits = 18;
/// --threads: applied to every facade solve in the driver (the dedicated
/// parallel-scaling section keeps its own explicit thread counts). CI
/// runs the smoke at 1 and 4 and diffs verdicts/rounds, exactly like the
/// cache-size drift check.
unsigned GlobalThreads = 1;
JsonReport Report;
bool WantJson = false;

void recordRow(const char *Section, const char *Case_, const char *Variant,
               const EngineRow &R) {
  if (!WantJson)
    return;
  JsonReport::Row Row;
  Row.field("section", Section)
      .field("case", Case_)
      .field("variant", Variant)
      .field("reachable", R.Reachable)
      .field("iterations", R.Iterations)
      .field("delta_rounds", R.DeltaRounds)
      .field("nodes_created", R.NodesCreated)
      .field("peak_live_nodes", R.PeakLiveNodes)
      .field("cache_hit_rate", R.CacheHitRate)
      .field("seconds", R.Seconds);
  Report.add(Row);
}

/// One naive-vs-semi-naive comparison row. NodesCreated is the BDD-op
/// proxy the acceptance criterion counts; both rows must agree on the
/// verdict and the number of Tarski rounds (the delta core computes the
/// identical per-round sequence, just cheaper).
void printStrategyRow(const char *Name, const EngineRow &Naive,
                      const EngineRow &Semi) {
  if (Naive.Reachable != Semi.Reachable ||
      Naive.Iterations != Semi.Iterations) {
    std::fprintf(stderr,
                 "%s: strategy ablation DISAGREES (verdict %d/%d, "
                 "rounds %llu/%llu)\n",
                 Name, Naive.Reachable, Semi.Reachable,
                 (unsigned long long)Naive.Iterations,
                 (unsigned long long)Semi.Iterations);
    std::exit(1);
  }
  double NodeRatio = Semi.NodesCreated
                         ? double(Naive.NodesCreated) /
                               double(Semi.NodesCreated)
                         : 0.0;
  std::printf("%-26s %9.3fs %9.3fs %11llu %11llu %7.2fx %6llu/%llu\n",
              Name, Naive.Seconds, Semi.Seconds,
              (unsigned long long)Naive.NodesCreated,
              (unsigned long long)Semi.NodesCreated, NodeRatio,
              (unsigned long long)Semi.DeltaRounds,
              (unsigned long long)Semi.Iterations);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strcmp(Argv[I], "--cache-bits") == 0 && I + 1 < Argc) {
      int Bits = std::atoi(Argv[++I]);
      if (Bits < 2 || Bits > 30) {
        std::fprintf(stderr, "--cache-bits must be in [2, 30]\n");
        return 2;
      }
      CacheBits = unsigned(Bits);
    } else if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 < Argc) {
      int N = std::atoi(Argv[++I]);
      if (N < 1 || N > 256) {
        std::fprintf(stderr, "--threads must be in [1, 256]\n");
        return 2;
      }
      GlobalThreads = unsigned(N);
    } else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
      JsonPath = Argv[++I];
      WantJson = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_ablation [--smoke] [--cache-bits n] "
                   "[--threads n] [--json FILE]\n");
      return 2;
    }
  }
  std::printf("=== Ablations (Sections 4.2 / 4.3) ===\n");
  std::printf("%-24s %10s %10s %10s %12s\n", "case", "EF-unsplit",
              "EF-split", "EF-opt", "simple-4.1");

  for (unsigned Bits : Smoke ? std::vector<unsigned>{4u}
                             : std::vector<unsigned>{4u, 5u, 6u}) {
    gen::TerminatorParams P;
    P.CounterBits = Bits;
    P.NumDeadVars = 4;
    P.Style = gen::DeadVarStyle::Iterative;
    P.Reachable = false;
    gen::Workload W = gen::terminatorProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);

    SolverOptions Opts;
    Opts.CacheBits = CacheBits;
    Opts.Threads = GlobalThreads;
    EngineRow Unsplit = runEngine(Parsed.Cfg, W.TargetLabel, "ef", Opts);
    EngineRow Split = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    EngineRow Opt = runEngine(Parsed.Cfg, W.TargetLabel, "ef-opt", Opts);
    EngineRow Simple = runEngine(Parsed.Cfg, W.TargetLabel, "summary", Opts);
    std::printf("%-24s %9.3fs %9.3fs %9.3fs %11.3fs\n", W.Name.c_str(),
                Unsplit.Seconds, Split.Seconds, Opt.Seconds,
                Simple.Seconds);
    recordRow("algorithms", W.Name.c_str(), "ef", Unsplit);
    recordRow("algorithms", W.Name.c_str(), "ef-split", Split);
    recordRow("algorithms", W.Name.c_str(), "ef-opt", Opt);
    recordRow("algorithms", W.Name.c_str(), "summary", Simple);
  }

  std::printf("\n--- early termination (positive driver instances) ---\n");
  std::printf("%-24s %12s %12s\n", "case", "early-stop", "full-fixpoint");
  for (uint64_t Seed : Smoke ? std::vector<unsigned>{7u}
                             : std::vector<unsigned>{7u, 8u, 9u}) {
    gen::DriverParams P;
    P.NumProcs = Smoke ? 12 : 24;
    P.StmtsPerProc = Smoke ? 10 : 14;
    P.Reachable = true;
    P.Seed = Seed;
    gen::Workload W = gen::driverProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);
    SolverOptions Opts;
    Opts.CacheBits = CacheBits;
    Opts.Threads = GlobalThreads;
    EngineRow Fast = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    Opts.EarlyStop = false;
    EngineRow Full = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    std::printf("%-24s %11.3fs %11.3fs\n", W.Name.c_str(), Fast.Seconds,
                Full.Seconds);
    recordRow("early-stop", W.Name.c_str(), "early", Fast);
    recordRow("early-stop", W.Name.c_str(), "full", Full);
  }

  // Naive vs semi-naive: the delta core must agree on verdict and round
  // count while allocating fewer BDD nodes and finishing sooner. The
  // terminator rows are negative instances (a full fixpoint is forced);
  // the bluetooth rows are Figure-3 configurations of the concurrent
  // engine at a bound where the Reach system iterates long enough for the
  // per-round frontier to shrink well below the accumulated relation.
  std::printf("\n--- evaluation strategy (naive vs semi-naive) ---\n");
  std::printf("%-26s %10s %10s %11s %11s %8s %8s\n", "case", "naive",
              "semi", "nodes-nv", "nodes-sn", "ratio", "delta/it");
  for (unsigned Bits : Smoke ? std::vector<unsigned>{4u}
                             : std::vector<unsigned>{4u, 5u, 6u}) {
    gen::TerminatorParams P;
    P.CounterBits = Bits;
    P.NumDeadVars = 4;
    P.Style = gen::DeadVarStyle::Iterative;
    P.Reachable = false;
    gen::Workload W = gen::terminatorProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);
    SolverOptions Opts;
    Opts.CacheBits = CacheBits;
    Opts.Threads = GlobalThreads;
    Opts.Strategy = fpc::EvalStrategy::Naive;
    EngineRow Naive = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    Opts.Strategy = fpc::EvalStrategy::SemiNaive;
    EngineRow Semi = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    printStrategyRow(W.Name.c_str(), Naive, Semi);
    recordRow("strategy", W.Name.c_str(), "naive", Naive);
    recordRow("strategy", W.Name.c_str(), "semi-naive", Semi);
  }
  {
    // (1,1,4) is the light two-thread row; (2,2,4) is the heavy Figure-3
    // configuration whose rounds overflow the computed cache — the regime
    // where the narrow (minimized-difference) frontier pays off.
    struct BtConfig {
      unsigned Adders, Stoppers, Switches;
    } Configs[] = {{1, 1, 4}, {2, 2, 4}};
    for (const BtConfig &C : Configs) {
      if (Smoke && C.Adders + C.Stoppers > 2)
        continue;
      ParsedConcProgram P =
          parseConcOrDie(gen::bluetoothModel(C.Adders, C.Stoppers));
      SolverOptions Opts;
      Opts.CacheBits = CacheBits;
      Opts.Threads = GlobalThreads;
      Opts.ContextBound = C.Switches;
      Opts.EarlyStop = false; // Figure 3 reports the full reachable set.
      Opts.Strategy = fpc::EvalStrategy::Naive;
      EngineRow Naive = runConcEngine(P, "ERR", "conc", Opts);
      Opts.Strategy = fpc::EvalStrategy::SemiNaive;
      EngineRow Semi = runConcEngine(P, "ERR", "conc", Opts);
      char Name[64];
      std::snprintf(Name, sizeof(Name), "bluetooth-%ua%us-k%u", C.Adders,
                    C.Stoppers, C.Switches);
      printStrategyRow(Name, Naive, Semi);
      recordRow("strategy", Name, "naive", Naive);
      recordRow("strategy", Name, "semi-naive", Semi);
    }
  }

  // Frontier-cofactor A/B: the same semi-naive core with the narrow-round
  // generalized cofactor off, as Coudert–Madre constrain (maximal
  // simplification, may grow the operand's support), and as Coudert–Madre
  // restrict (simplifies less, support never grows). All three are
  // bit-identical by construction — verdict, rounds, and final summary
  // size are asserted — so the columns worth reading are wall-clock,
  // allocated nodes, and the measured support-growth factor of the
  // cofactored operand (restrict ≤ 1.00 by construction).
  std::printf("\n--- frontier cofactor (off / constrain / restrict) ---\n");
  std::printf("%-26s %10s %10s %10s %11s %11s %8s %8s\n", "case", "off",
              "constr", "restr", "nodes-co", "nodes-re", "grow-co",
              "grow-re");
  {
    auto checkAgree = [](const char *Name, const EngineRow &A,
                         const EngineRow &B) {
      if (A.Reachable != B.Reachable || A.Iterations != B.Iterations ||
          A.Nodes != B.Nodes) {
        std::fprintf(stderr, "%s: cofactor ablation DISAGREES\n", Name);
        std::exit(1);
      }
    };
    auto printCofactorRow = [&](const char *Name, const EngineRow &Off,
                                const EngineRow &Con, const EngineRow &Res) {
      checkAgree(Name, Off, Con);
      checkAgree(Name, Off, Res);
      std::printf("%-26s %9.3fs %9.3fs %9.3fs %11llu %11llu %8.2f %8.2f\n",
                  Name, Off.Seconds, Con.Seconds, Res.Seconds,
                  (unsigned long long)Con.NodesCreated,
                  (unsigned long long)Res.NodesCreated,
                  Con.cofactorSupportGrowth(), Res.cofactorSupportGrowth());
      recordRow("cofactor", Name, "off", Off);
      recordRow("cofactor", Name, "constrain", Con);
      recordRow("cofactor", Name, "restrict", Res);
    };

    struct BtConfig {
      unsigned Adders, Stoppers, Switches;
    } Configs[] = {{1, 1, 4}, {2, 2, 4}};
    for (const BtConfig &C : Configs) {
      if (Smoke && C.Adders + C.Stoppers > 2)
        continue;
      ParsedConcProgram P =
          parseConcOrDie(gen::bluetoothModel(C.Adders, C.Stoppers));
      SolverOptions Opts;
      Opts.CacheBits = CacheBits;
      Opts.Threads = GlobalThreads;
      Opts.ContextBound = C.Switches;
      Opts.EarlyStop = false;
      Opts.FrontierCofactor = fpc::CofactorMode::Off;
      EngineRow Off = runConcEngine(P, "ERR", "conc", Opts);
      Opts.FrontierCofactor = fpc::CofactorMode::Constrain;
      EngineRow Con = runConcEngine(P, "ERR", "conc", Opts);
      Opts.FrontierCofactor = fpc::CofactorMode::Restrict;
      EngineRow Res = runConcEngine(P, "ERR", "conc", Opts);
      char Name[64];
      std::snprintf(Name, sizeof(Name), "bluetooth-%ua%us-k%u", C.Adders,
                    C.Stoppers, C.Switches);
      printCofactorRow(Name, Off, Con, Res);
    }
    for (unsigned Bits : Smoke ? std::vector<unsigned>{4u}
                               : std::vector<unsigned>{5u, 6u}) {
      gen::TerminatorParams P;
      P.CounterBits = Bits;
      P.NumDeadVars = 4;
      P.Style = gen::DeadVarStyle::Iterative;
      P.Reachable = false;
      gen::Workload W = gen::terminatorProgram(P);
      ParsedProgram Parsed = parseOrDie(W.Source);
      SolverOptions Opts;
      Opts.CacheBits = CacheBits;
      Opts.Threads = GlobalThreads;
      Opts.FrontierCofactor = fpc::CofactorMode::Off;
      EngineRow Off = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
      Opts.FrontierCofactor = fpc::CofactorMode::Constrain;
      EngineRow Con = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
      Opts.FrontierCofactor = fpc::CofactorMode::Restrict;
      EngineRow Res = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
      printCofactorRow(W.Name.c_str(), Off, Con, Res);
    }
  }

  // Cross-query sessions: N targets over one program, solved as N fresh
  // facade calls versus one SolverSession::solveAll. The session saturates
  // the summary once (driven by the hardest target) and replays the
  // recorded rounds for the rest, so the acceptance criterion is a
  // measurable speedup at bit-identical per-target verdicts and rounds —
  // the drift check here mirrors the SessionTest differential.
  std::printf("\n--- cross-query sessions (solveAll vs N fresh solves) ---\n");
  std::printf("%-26s %3s %11s %11s %8s %16s\n", "case", "n", "fresh-total",
              "session", "speedup", "reused/recomp");
  {
    struct SessionCase {
      std::string Name;
      std::string Source;
      std::vector<Query> Queries;
      SolverOptions Opts;
    };
    std::vector<SessionCase> Cases;

    // Terminator: a negative instance (first query saturates) plus point
    // targets spread through procedure 0.
    {
      gen::TerminatorParams P;
      P.CounterBits = Smoke ? 4 : 6;
      P.NumDeadVars = 4;
      P.Style = gen::DeadVarStyle::Iterative;
      P.Reachable = false;
      gen::Workload W = gen::terminatorProgram(P);
      ParsedProgram Parsed = parseOrDie(W.Source);
      SessionCase C;
      C.Name = W.Name + "-multi";
      C.Source = W.Source;
      C.Opts.CacheBits = CacheBits;
      C.Opts.Threads = GlobalThreads;
      C.Queries.push_back(Query::fromSource("").target(W.TargetLabel));
      unsigned NumPcs = Parsed.Cfg.Procs[0].NumPcs;
      for (unsigned I = 1; I <= 5; ++I)
        C.Queries.push_back(
            Query::fromSource("").targetPoint(0, (I * NumPcs) / 7));
      Cases.push_back(std::move(C));
    }

    // Bluetooth: the Figure-3 concurrent model, targets across threads.
    // Figure 3 reports full reachable sets (no early stop), which is also
    // the query-server shape: every fresh solve saturates, the session
    // saturates once.
    {
      SessionCase C;
      C.Name = Smoke ? "bluetooth-1a1s-k3-multi" : "bluetooth-1a1s-k4-multi";
      C.Source = gen::bluetoothModel(1, 1);
      C.Opts.CacheBits = CacheBits;
      C.Opts.Threads = GlobalThreads;
      C.Opts.EarlyStop = false;
      C.Opts.ContextBound = Smoke ? 3 : 4;
      C.Queries.push_back(Query::fromSource("").target("ERR"));
      C.Queries.push_back(Query::fromSource("").targetPoint(0, 1, 0));
      C.Queries.push_back(Query::fromSource("").targetPoint(0, 2, 0));
      C.Queries.push_back(Query::fromSource("").targetPoint(0, 1, 1));
      C.Queries.push_back(Query::fromSource("").targetPoint(0, 2, 1));
      Cases.push_back(std::move(C));
    }

    for (SessionCase &C : Cases) {
      // N fresh facade calls.
      std::vector<SolveResult> Fresh;
      double FreshTotal = 0;
      for (const Query &Q : C.Queries) {
        Query FQ = Q;
        FQ.Source = C.Source;
        SolveResult R = Solver::solve(FQ, C.Opts);
        if (!R.ok()) {
          std::fprintf(stderr, "%s: fresh solve failed: %s\n",
                       C.Name.c_str(), R.Error.c_str());
          std::exit(1);
        }
        FreshTotal += R.Seconds;
        Fresh.push_back(std::move(R));
      }

      // One session, one batch.
      std::unique_ptr<SolverSession> S =
          Solver::open(Query::fromSource(C.Source), C.Opts);
      if (!S->ok()) {
        std::fprintf(stderr, "%s: open failed: %s\n", C.Name.c_str(),
                     S->error().c_str());
        std::exit(1);
      }
      std::vector<SolveResult> Sess = S->solveAll(C.Queries);
      double SessTotal = 0;
      uint64_t Reused = 0, Recomputed = 0;
      for (size_t I = 0; I < Sess.size(); ++I) {
        const SolveResult &F = Fresh[I];
        const SolveResult &R = Sess[I];
        if (!R.ok() || F.Reachable != R.Reachable ||
            F.Iterations != R.Iterations) {
          std::fprintf(stderr,
                       "%s target %zu: session DISAGREES with fresh "
                       "(verdict %d/%d, rounds %llu/%llu)\n",
                       C.Name.c_str(), I, F.Reachable, R.Reachable,
                       (unsigned long long)F.Iterations,
                       (unsigned long long)R.Iterations);
          std::exit(1);
        }
        SessTotal += R.Seconds;
        Reused += R.SummariesReused;
        Recomputed += R.SummariesRecomputed;
        char Target[48];
        std::snprintf(Target, sizeof(Target), "%s#t%zu", C.Name.c_str(), I);
        recordRow("session", Target, "fresh", rowOrDie(F, "fresh"));
        recordRow("session", Target, "session", rowOrDie(R, "session"));
      }
      double Speedup = SessTotal > 0 ? FreshTotal / SessTotal : 0.0;
      std::printf("%-26s %3zu %10.3fs %10.3fs %7.2fx %10llu/%llu\n",
                  C.Name.c_str(), C.Queries.size(), FreshTotal, SessTotal,
                  Speedup, (unsigned long long)Reused,
                  (unsigned long long)Recomputed);
      if (WantJson) {
        JsonReport::Row Row;
        Row.field("section", "session-total")
            .field("case", C.Name)
            .field("variant", "totals")
            .field("targets", uint64_t(C.Queries.size()))
            .field("fresh_seconds", FreshTotal)
            .field("session_seconds", SessTotal)
            .field("speedup", Speedup)
            .field("summaries_reused", Reused)
            .field("summaries_recomputed", Recomputed)
            // Retained (reachable-only) nodes, sampled at query
            // boundaries — the whole-session memory gauge the
            // trajectory check gates on.
            .field("peak_live_nodes", uint64_t(S->peakLiveNodes()));
        Report.add(Row);
      }
    }
  }

  // Parallel SCC scheduling: multi-SCC calculus systems (K independent
  // recursive relations under a Root union) solved at 1/2/4/8 worker
  // threads. Every thread count must report the identical root tuple
  // count, root BDD size, and per-relation iteration totals — parallel
  // scheduling is a pure wall-clock lever (per-worker managers, canonical
  // import-back), so any disagreement is a correctness bug and exits 1.
  // The engine-level rows exercise the same knob through the Solver
  // facade (the engines' systems have few independent SCCs, so no speedup
  // is claimed there — the gate is bit-identical verdicts/rounds).
  std::printf("\n--- parallel SCC scheduling (--threads) ---\n");
  std::printf("%-26s %8s %10s %10s %8s %6s\n", "case", "threads", "seconds",
              "vs-t1", "sccs-par", "root");
  {
    std::vector<unsigned> ThreadCounts =
        Smoke ? std::vector<unsigned>{1u, 4u}
              : std::vector<unsigned>{1u, 2u, 4u, 8u};

    struct FpCase {
      std::string Name;
      gen::MultiSccParams Params;
    };
    std::vector<FpCase> FpCases;
    {
      FpCase T;
      T.Name = "multi-scc-terminator";
      T.Params.Style = gen::MultiSccStyle::Lockstep;
      T.Params.Relations = 8;
      T.Params.Bits = Smoke ? 6 : 8;
      FpCases.push_back(T);
      FpCase G;
      G.Name = "multi-scc-gen";
      G.Params.Style = gen::MultiSccStyle::Graph;
      G.Params.Relations = 8;
      G.Params.Bits = Smoke ? 6 : 8;
      G.Params.ExtraEdges = 32;
      FpCases.push_back(G);
    }

    for (const FpCase &C : FpCases) {
      std::string Src = gen::multiSccFixpointSystem(C.Params);
      DiagnosticEngine Diags;
      std::vector<fpc::Fact> Facts;
      auto Sys = fpc::parseSystem(Src, Diags, &Facts);
      if (!Sys) {
        std::fprintf(stderr, "%s failed to parse:\n%s", C.Name.c_str(),
                     Diags.str().c_str());
        return 1;
      }
      fpc::RelId Root = Sys->relId("Root");

      struct ThreadRow {
        unsigned Threads = 0;
        double Seconds = 0;
        uint64_t RootCount = 0;
        size_t RootNodes = 0;
        uint64_t Iterations = 0; ///< Summed over all relations.
        uint64_t SccsParallel = 0;
        EngineRow Row;
      };
      std::vector<ThreadRow> Rows;
      for (unsigned T : ThreadCounts) {
        BddManager Mgr(0, CacheBits);
        fpc::Evaluator Ev(*Sys, Mgr, fpc::Layout::sequential(*Sys, Mgr));
        Ev.setThreads(T);
        fpc::bindFacts(Ev, *Sys, Facts);
        Timer Tm;
        fpc::EvalResult R = Ev.evaluate(Root);
        ThreadRow TR;
        TR.Threads = T;
        TR.Seconds = Tm.seconds();
        TR.RootNodes = R.Value.nodeCount();
        // Count over the formals' bits only (other variables don't-care).
        Bdd Constrained = R.Value;
        unsigned TupleBits = 0;
        for (fpc::VarId V : Sys->relation(Root).Formals) {
          Constrained &= Ev.domainConstraint(V);
          TupleBits += unsigned(Ev.layout().bits(V).size());
        }
        double Exact =
            Constrained.satCount(Mgr.numVars()) /
            std::pow(2.0, double(Mgr.numVars() - TupleBits));
        TR.RootCount = uint64_t(Exact + 0.5);
        uint64_t DeltaRounds = 0;
        for (const auto &[Name, RS] : Ev.stats()) {
          TR.Iterations += RS.Iterations;
          DeltaRounds += RS.DeltaRounds;
        }
        TR.Row.DeltaRounds = DeltaRounds;
        TR.SccsParallel = Ev.parallelStats().SccsSolvedParallel;
        BddStats BS = Mgr.stats();
        BS.merge(Ev.workerBddStats());
        TR.Row.Reachable = TR.RootCount != 0;
        TR.Row.Seconds = TR.Seconds;
        TR.Row.Nodes = TR.RootNodes;
        TR.Row.Iterations = TR.Iterations;
        TR.Row.NodesCreated = BS.NodesCreated;
        TR.Row.PeakLiveNodes = BS.PeakNodes;
        TR.Row.CacheHitRate = BS.CacheLookups
                                  ? double(BS.CacheHits) /
                                        double(BS.CacheLookups)
                                  : 0.0;
        Rows.push_back(TR);
      }
      const ThreadRow &Base = Rows.front();
      for (const ThreadRow &TR : Rows) {
        if (TR.RootCount != Base.RootCount ||
            TR.RootNodes != Base.RootNodes ||
            TR.Iterations != Base.Iterations) {
          std::fprintf(stderr,
                       "%s: threads=%u DISAGREES with threads=1 "
                       "(count %llu/%llu, nodes %zu/%zu, rounds "
                       "%llu/%llu)\n",
                       C.Name.c_str(), TR.Threads,
                       (unsigned long long)TR.RootCount,
                       (unsigned long long)Base.RootCount, TR.RootNodes,
                       Base.RootNodes, (unsigned long long)TR.Iterations,
                       (unsigned long long)Base.Iterations);
          std::exit(1);
        }
        double Speedup = TR.Seconds > 0 ? Base.Seconds / TR.Seconds : 0.0;
        std::printf("%-26s %8u %9.3fs %9.2fx %8llu %6llu\n", C.Name.c_str(),
                    TR.Threads, TR.Seconds, Speedup,
                    (unsigned long long)TR.SccsParallel,
                    (unsigned long long)TR.RootCount);
        // One row per measurement: the recordRow fields (the drift
        // extract and trajectory gate read those) plus the scaling
        // extras on the same row.
        if (WantJson) {
          char Variant[32];
          std::snprintf(Variant, sizeof(Variant), "threads-%u",
                        TR.Threads);
          JsonReport::Row Row;
          Row.field("section", "threads")
              .field("case", C.Name)
              .field("variant", Variant)
              .field("reachable", TR.Row.Reachable)
              .field("iterations", TR.Row.Iterations)
              .field("delta_rounds", TR.Row.DeltaRounds)
              .field("nodes_created", TR.Row.NodesCreated)
              .field("peak_live_nodes", TR.Row.PeakLiveNodes)
              .field("cache_hit_rate", TR.Row.CacheHitRate)
              .field("seconds", TR.Row.Seconds)
              .field("threads", TR.Threads)
              .field("speedup_vs_t1", Speedup)
              .field("sccs_parallel", TR.SccsParallel);
          Report.add(Row);
        }
      }
    }

    // Engine-level plumbing rows: identical verdicts/rounds through the
    // facade at threads 1 vs 4 (terminator ef-split + bluetooth conc).
    {
      gen::TerminatorParams P;
      P.CounterBits = Smoke ? 4 : 5;
      P.NumDeadVars = 4;
      P.Style = gen::DeadVarStyle::Iterative;
      P.Reachable = false;
      gen::Workload W = gen::terminatorProgram(P);
      ParsedProgram Parsed = parseOrDie(W.Source);
      SolverOptions Opts;
      Opts.CacheBits = CacheBits;
      EngineRow T1 = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
      Opts.Threads = 4;
      EngineRow T4 = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
      if (T1.Reachable != T4.Reachable || T1.Iterations != T4.Iterations ||
          T1.Nodes != T4.Nodes) {
        std::fprintf(stderr,
                     "%s: engine threads ablation DISAGREES (verdict "
                     "%d/%d, rounds %llu/%llu)\n",
                     W.Name.c_str(), T1.Reachable, T4.Reachable,
                     (unsigned long long)T1.Iterations,
                     (unsigned long long)T4.Iterations);
        std::exit(1);
      }
      std::printf("%-26s %8s %9.3fs %9.3fs (verdict/rounds identical)\n",
                  (W.Name + "-engine").c_str(), "1-vs-4", T1.Seconds,
                  T4.Seconds);
      recordRow("threads", (W.Name + "-engine").c_str(), "threads-1", T1);
      recordRow("threads", (W.Name + "-engine").c_str(), "threads-4", T4);
    }

    // Intra-SCC disjunct parallelism: one heavy SCC whose semi-naive
    // rounds fan their distributive products over the worker pool.
    // Threshold 1 arms the fan-out from round 2, so even the smoke
    // engages the path; every thread count must agree with threads=1 on
    // verdict, iteration count, delta rounds, and summary BDD size, and
    // any multi-threaded run that never takes the parallel path is
    // itself a failure (the gate would be silently dead).
    std::printf("\n--- intra-SCC disjuncts (--disjunct-threshold 1) ---\n");
    std::printf("%-26s %8s %10s %8s %9s %10s\n", "case", "threads",
                "seconds", "vs-t1", "par-rnds", "imported");
    {
      struct DisjCase {
        std::string Name;
        std::string Source;
        std::string Target;
        SolverOptions Opts;
      };
      std::vector<DisjCase> DisjCases;
      {
        DisjCase B;
        B.Name = Smoke ? "bluetooth-1a1s-k3-disj" : "bluetooth-2a2s-k4-disj";
        B.Source = Smoke ? gen::bluetoothModel(1, 1)
                         : gen::bluetoothModel(2, 2);
        B.Target = "ERR";
        B.Opts.Engine = "conc";
        B.Opts.ContextBound = Smoke ? 3 : 4;
        B.Opts.EarlyStop = false;
        DisjCases.push_back(std::move(B));

        gen::TerminatorParams P;
        P.CounterBits = Smoke ? 4 : 6;
        P.NumDeadVars = 4;
        P.Style = gen::DeadVarStyle::Iterative;
        P.Reachable = false;
        gen::Workload W = gen::terminatorProgram(P);
        DisjCase T;
        T.Name = W.Name + "-disj";
        T.Source = W.Source;
        T.Target = W.TargetLabel;
        T.Opts.Engine = "summary";
        // Pin the monolithic Summary relation: under the per-procedure
        // split (the default) the heavy work runs as SCC tasks on the
        // pool, so no top-level round ever crosses the disjunct gate and
        // the RoundsParallel >= 1 assertion below would trip. This
        // section measures the intra-SCC fan-out specifically.
        T.Opts.MonolithicSummary = true;
        DisjCases.push_back(std::move(T));
      }

      for (DisjCase &C : DisjCases) {
        C.Opts.CacheBits = CacheBits;
        C.Opts.DisjunctParallelThreshold = 1;
        Query Q = Query::fromSource(C.Source).target(C.Target);
        std::vector<SolveResult> Rows;
        for (unsigned T : ThreadCounts) {
          SolverOptions O = C.Opts;
          O.Threads = T;
          SolveResult R = Solver::solve(Q, O);
          if (!R.ok()) {
            std::fprintf(stderr, "%s: solve failed at threads=%u: %s\n",
                         C.Name.c_str(), T, R.Error.c_str());
            std::exit(1);
          }
          if (T > 1 && R.RoundsParallel == 0) {
            std::fprintf(stderr,
                         "%s: threads=%u never took the disjunct-parallel "
                         "path despite threshold 1\n",
                         C.Name.c_str(), T);
            std::exit(1);
          }
          Rows.push_back(std::move(R));
        }
        const SolveResult &Base = Rows.front();
        for (size_t I = 0; I < Rows.size(); ++I) {
          const SolveResult &R = Rows[I];
          unsigned T = ThreadCounts[I];
          if (R.Reachable != Base.Reachable ||
              R.Iterations != Base.Iterations ||
              R.DeltaRounds != Base.DeltaRounds ||
              R.SummaryNodes != Base.SummaryNodes) {
            std::fprintf(stderr,
                         "%s: threads=%u DISAGREES with threads=1 "
                         "(verdict %d/%d, rounds %llu/%llu, nodes "
                         "%llu/%llu)\n",
                         C.Name.c_str(), T, R.Reachable, Base.Reachable,
                         (unsigned long long)R.Iterations,
                         (unsigned long long)Base.Iterations,
                         (unsigned long long)R.SummaryNodes,
                         (unsigned long long)Base.SummaryNodes);
            std::exit(1);
          }
          double Speedup = R.Seconds > 0 ? Base.Seconds / R.Seconds : 0.0;
          std::printf("%-26s %8u %9.3fs %7.2fx %9llu %10llu\n",
                      C.Name.c_str(), T, R.Seconds, Speedup,
                      (unsigned long long)R.RoundsParallel,
                      (unsigned long long)R.ImportedNodes);
          if (WantJson) {
            char Variant[32];
            std::snprintf(Variant, sizeof(Variant), "threads-%u", T);
            EngineRow ER = rowOrDie(R, C.Name.c_str());
            JsonReport::Row Row;
            Row.field("section", "disjuncts")
                .field("case", C.Name)
                .field("variant", Variant)
                .field("reachable", ER.Reachable)
                .field("iterations", ER.Iterations)
                .field("delta_rounds", ER.DeltaRounds)
                .field("nodes_created", ER.NodesCreated)
                .field("peak_live_nodes", ER.PeakLiveNodes)
                .field("cache_hit_rate", ER.CacheHitRate)
                .field("seconds", ER.Seconds)
                .field("threads", T)
                .field("speedup_vs_t1", Speedup)
                .field("rounds_parallel", R.RoundsParallel)
                .field("disjuncts_parallel", R.DisjunctsParallel)
                .field("imported_nodes", R.ImportedNodes);
            Report.add(Row);
          }
        }
      }
    }
  }

  // Per-procedure summary relations: the split (the default) compiles one
  // Summary_<group> relation per call-graph SCC, so the calculus
  // condensation is as wide as the call graph and fpc::runDag schedules
  // real work; MonolithicSummary is the single-relation escape hatch.
  // Gates (each exits 1): split and monolithic agree on every verdict,
  // the summary engine's split union is node-for-node identical to the
  // monolithic relation, the reported width equals the call-graph SCC
  // count and exceeds the monolithic 1-4 band, and the threads=4 split
  // run schedules at least one SCC task on the worker pool.
  std::printf("\n--- per-procedure summaries (condensation width) ---\n");
  std::printf("%-26s %9s %9s %6s %5s %9s %10s %8s\n", "case", "engine",
              "variant", "width", "rels", "sccs-par", "seconds", "vs-mono");
  {
    auto recordCondRow = [&](const std::string &Case_, const char *Engine,
                             const char *Variant, const EngineRow &R,
                             double MonoSeconds) {
      double Speedup = R.Seconds > 0 ? MonoSeconds / R.Seconds : 0.0;
      std::printf("%-26s %9s %9s %6u %5u %9llu %9.3fs %7.2fx\n",
                  Case_.c_str(), Engine, Variant, R.CondensationWidth,
                  R.SummaryRelations,
                  (unsigned long long)R.SccsSolvedParallel, R.Seconds,
                  Speedup);
      if (WantJson) {
        JsonReport::Row Row;
        Row.field("section", "condensation")
            .field("case", Case_)
            .field("variant", std::string(Engine) + "-" + Variant)
            .field("reachable", R.Reachable)
            .field("iterations", R.Iterations)
            .field("condensation_width", R.CondensationWidth)
            .field("summary_relations", R.SummaryRelations)
            .field("sccs_solved_parallel", R.SccsSolvedParallel)
            .field("seconds", R.Seconds)
            .field("speedup_vs_mono", Speedup);
        Report.add(Row);
      }
    };
    auto checkVerdict = [](const std::string &Case_, const EngineRow &Mono,
                           const EngineRow &Split) {
      if (Mono.Reachable != Split.Reachable) {
        std::fprintf(stderr,
                     "%s: split summary DISAGREES with monolithic "
                     "(verdict %d/%d)\n",
                     Case_.c_str(), Split.Reachable, Mono.Reachable);
        std::exit(1);
      }
    };

    // Sequential: the terminator workload (one phase<i> procedure per
    // dead variable) through the facade, split at 1 and 4 threads
    // against the monolithic baseline.
    {
      gen::TerminatorParams P;
      P.CounterBits = Smoke ? 4 : 5;
      P.NumDeadVars = 4;
      P.Style = gen::DeadVarStyle::Iterative;
      P.Reachable = false;
      gen::Workload W = gen::terminatorProgram(P);
      ParsedProgram Parsed = parseOrDie(W.Source);
      size_t CgWidth = bp::buildCallGraph(Parsed.Cfg).numSccs();
      for (const char *Engine : {"summary", "ef-opt"}) {
        SolverOptions Opts;
        Opts.CacheBits = CacheBits;
        Opts.MonolithicSummary = true;
        EngineRow Mono = runEngine(Parsed.Cfg, W.TargetLabel, Engine, Opts);
        Opts.MonolithicSummary = false;
        EngineRow S1 = runEngine(Parsed.Cfg, W.TargetLabel, Engine, Opts);
        Opts.Threads = 4;
        EngineRow S4 = runEngine(Parsed.Cfg, W.TargetLabel, Engine, Opts);
        checkVerdict(W.Name, Mono, S1);
        checkVerdict(W.Name, Mono, S4);
        if (S1.CondensationWidth != CgWidth || CgWidth <= 4) {
          std::fprintf(stderr,
                       "%s/%s: split width %u != call-graph SCCs %zu "
                       "(or width not > 4)\n",
                       W.Name.c_str(), Engine, S1.CondensationWidth,
                       CgWidth);
          std::exit(1);
        }
        if (std::strcmp(Engine, "summary") == 0 && S1.Nodes != Mono.Nodes) {
          std::fprintf(stderr,
                       "%s: split summary union is not bit-identical to "
                       "the monolithic relation (%zu vs %zu nodes)\n",
                       W.Name.c_str(), S1.Nodes, Mono.Nodes);
          std::exit(1);
        }
        if (S4.SccsSolvedParallel == 0) {
          std::fprintf(stderr,
                       "%s/%s: threads=4 never scheduled an SCC task on "
                       "the worker pool\n",
                       W.Name.c_str(), Engine);
          std::exit(1);
        }
        recordCondRow(W.Name, Engine, "mono-t1", Mono, Mono.Seconds);
        recordCondRow(W.Name, Engine, "split-t1", S1, Mono.Seconds);
        recordCondRow(W.Name, Engine, "split-t4", S4, Mono.Seconds);
      }
    }

    // Concurrent: the bluetooth model's per-thread call graphs carry the
    // same width (main/ioInc/ioDec/pendInc/pendDec = 5 SCCs per thread);
    // the interleaved encoding itself keeps one Reach relation because
    // the context-switch clauses couple every thread, so the conc engine
    // honestly reports the dependency-analysis width instead.
    {
      ParsedConcProgram P = parseConcOrDie(gen::bluetoothModel(1, 1));
      for (size_t I = 0; I < P.Cfgs.size(); ++I) {
        size_t N = bp::buildCallGraph(P.Cfgs[I]).numSccs();
        if (N <= 4) {
          std::fprintf(stderr,
                       "bluetooth thread %zu call graph has %zu SCCs "
                       "(expected > 4)\n",
                       I, N);
          std::exit(1);
        }
        std::printf("%-26s thread %zu call graph: %zu SCCs\n",
                    "bluetooth-1a1s", I, N);
      }
      SolverOptions Opts;
      Opts.CacheBits = CacheBits;
      Opts.ContextBound = 2;
      EngineRow Conc = runConcEngine(P, "ERR", "conc", Opts);
      recordCondRow("bluetooth-1a1s-k2", "conc", "t1", Conc, Conc.Seconds);
    }

    // The Lal-Reps engine pins its inner solve to the monolithic
    // compilation: the eager reduction's O(k) global copies make
    // reachable entries a vanishing fraction of all entries, so the
    // split's all-entries seeds forfeit entry-forward pruning (~16x on
    // the LalRepsTest seeds). This block gates the pin: the facade must
    // report a monolithic width (<= 4) even when the split is requested,
    // with verdicts unchanged.
    {
      const char *HandshakeSrc = R"(
shared decl a, b;
thread
main() begin
  a := T;
  b := T;
end
end
thread
main() begin
  decl seen;
  seen := F;
  if (a & !b) then seen := T; fi;
  if (seen & b) then ERR: skip; fi;
end
end
)";
      ParsedConcProgram P = parseConcOrDie(HandshakeSrc);
      SolverOptions Opts;
      Opts.CacheBits = CacheBits;
      Opts.ContextBound = 2;
      Opts.MonolithicSummary = true;
      EngineRow Mono = runConcEngine(P, "ERR", "lal-reps", Opts);
      Opts.MonolithicSummary = false;
      EngineRow S1 = runConcEngine(P, "ERR", "lal-reps", Opts);
      Opts.Threads = 4;
      EngineRow S4 = runConcEngine(P, "ERR", "lal-reps", Opts);
      checkVerdict("handshake-k2", Mono, S1);
      checkVerdict("handshake-k2", Mono, S4);
      if (S1.CondensationWidth > 4 || S1.CondensationWidth == 0 ||
          S1.CondensationWidth != Mono.CondensationWidth) {
        std::fprintf(stderr,
                     "handshake-k2: lal-reps width %u with split "
                     "requested, %u monolithic (the engine must pin the "
                     "monolithic compilation)\n",
                     S1.CondensationWidth, Mono.CondensationWidth);
        std::exit(1);
      }
      recordCondRow("handshake-k2", "lal-reps", "mono-t1", Mono,
                    Mono.Seconds);
      recordCondRow("handshake-k2", "lal-reps", "pinned-mono-t1", S1,
                    Mono.Seconds);
      recordCondRow("handshake-k2", "lal-reps", "pinned-mono-t4", S4,
                    Mono.Seconds);
    }
  }

  if (WantJson)
    Report.write(JsonPath);
  return 0;
}
