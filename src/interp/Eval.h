//===- Eval.h - Explicit expression evaluation ------------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for explicit-state execution of Boolean programs. Valuations are
/// bitmasks (bit i = variable slot i), which caps explicit engines at 32
/// locals and 32 globals — plenty for oracle-sized inputs. Nondeterministic
/// `*` subexpressions are resolved against an explicit choice vector; the
/// engines enumerate all choice vectors.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_INTERP_EVAL_H
#define GETAFIX_INTERP_EVAL_H

#include "bp/Ast.h"

#include <cstdint>
#include <vector>

namespace getafix {
namespace interp {

using Valuation = uint32_t;

inline bool getVar(const bp::VarRef &Ref, Valuation Locals,
                   Valuation Globals) {
  Valuation Mask = 1u << Ref.Index;
  return ((Ref.IsGlobal ? Globals : Locals) & Mask) != 0;
}

inline Valuation setBit(Valuation V, unsigned Index, bool Value) {
  Valuation Mask = 1u << Index;
  return Value ? (V | Mask) : (V & ~Mask);
}

/// Counts `*` occurrences in \p E.
inline unsigned countNondet(const bp::Expr &E) {
  unsigned N = E.Kind == bp::ExprKind::Nondet ? 1 : 0;
  if (E.Lhs)
    N += countNondet(*E.Lhs);
  if (E.Rhs)
    N += countNondet(*E.Rhs);
  return N;
}

/// Evaluates \p E; `*` nodes consume successive bits of \p Choices starting
/// at \p ChoiceIdx (advanced in traversal order).
inline bool evalExpr(const bp::Expr &E, Valuation Locals, Valuation Globals,
                     uint32_t Choices, unsigned &ChoiceIdx) {
  switch (E.Kind) {
  case bp::ExprKind::True:
    return true;
  case bp::ExprKind::False:
    return false;
  case bp::ExprKind::Nondet:
    return ((Choices >> ChoiceIdx++) & 1) != 0;
  case bp::ExprKind::Var:
    return getVar(E.Ref, Locals, Globals);
  case bp::ExprKind::Not:
    return !evalExpr(*E.Lhs, Locals, Globals, Choices, ChoiceIdx);
  case bp::ExprKind::And: {
    // No short-circuit: both sides must consume their choice bits so that
    // the traversal order stays aligned with countNondet.
    bool L = evalExpr(*E.Lhs, Locals, Globals, Choices, ChoiceIdx);
    bool R = evalExpr(*E.Rhs, Locals, Globals, Choices, ChoiceIdx);
    return L && R;
  }
  case bp::ExprKind::Or: {
    bool L = evalExpr(*E.Lhs, Locals, Globals, Choices, ChoiceIdx);
    bool R = evalExpr(*E.Rhs, Locals, Globals, Choices, ChoiceIdx);
    return L || R;
  }
  }
  return false;
}

/// Total nondet bits across a list of expressions.
inline unsigned countNondet(const std::vector<const bp::Expr *> &Exprs) {
  unsigned N = 0;
  for (const bp::Expr *E : Exprs)
    N += countNondet(*E);
  return N;
}

/// Evaluates a list of expressions under one choice vector.
inline std::vector<bool> evalExprs(const std::vector<const bp::Expr *> &Exprs,
                                   Valuation Locals, Valuation Globals,
                                   uint32_t Choices) {
  std::vector<bool> Values;
  Values.reserve(Exprs.size());
  unsigned ChoiceIdx = 0;
  for (const bp::Expr *E : Exprs)
    Values.push_back(evalExpr(*E, Locals, Globals, Choices, ChoiceIdx));
  return Values;
}

} // namespace interp
} // namespace getafix

#endif // GETAFIX_INTERP_EVAL_H
