//===- Calculus.cpp - First-order fixed-point calculus --------------------===//

#include "fpcalc/Calculus.h"

#include <algorithm>
#include <set>

using namespace getafix;
using namespace getafix::fpc;

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

DomainId System::addDomain(std::string Name, uint64_t Size) {
  assert(Size >= 1 && "domains must be non-empty");
  Domains.push_back(Domain{std::move(Name), Size, 0});
  return DomainId(Domains.size() - 1);
}

DomainId System::addBitDomain(std::string Name, unsigned Bits) {
  assert(Bits >= 1 && Bits <= 4096 && "unreasonable bit-vector width");
  uint64_t Size = Bits < 64 ? (uint64_t(1) << Bits) : ~uint64_t(0);
  Domains.push_back(Domain{std::move(Name), Size, Bits});
  return DomainId(Domains.size() - 1);
}

VarId System::addVar(std::string Name, DomainId Dom) {
  assert(Dom < Domains.size() && "unknown domain");
  Vars.push_back(Var{std::move(Name), Dom});
  return VarId(Vars.size() - 1);
}

RelId System::declareRel(std::string Name, std::vector<VarId> Formals) {
#ifndef NDEBUG
  std::set<VarId> Unique(Formals.begin(), Formals.end());
  assert(Unique.size() == Formals.size() && "formals must be distinct");
  for (VarId V : Formals)
    assert(V < Vars.size() && "unknown formal variable");
#endif
  Relation R;
  R.Name = Name;
  R.Formals = std::move(Formals);
  Rels.push_back(std::move(R));
  RelId Id = RelId(Rels.size() - 1);
  auto [It, Inserted] = RelIds.emplace(std::move(Name), Id);
  (void)It;
  assert(Inserted && "duplicate relation name");
  return Id;
}

void System::define(RelId Rel, Formula *Rhs) {
  assert(Rel < Rels.size() && "unknown relation");
  assert(!Rels[Rel].Def && "relation already defined");
  assert(Rhs && "null definition");
  Rels[Rel].Def = Rhs;
}

void System::defineNu(RelId Rel, Formula *Rhs) {
  define(Rel, Rhs);
  Rels[Rel].IsNu = true;
}

//===----------------------------------------------------------------------===//
// Formula builders
//===----------------------------------------------------------------------===//

Formula *System::make(FormulaKind Kind) {
  Arena.push_back(std::make_unique<Formula>(Kind));
  return Arena.back().get();
}

Formula *System::top() {
  Formula *F = make(FormulaKind::Const);
  F->ConstValue = true;
  return F;
}

Formula *System::bottom() {
  Formula *F = make(FormulaKind::Const);
  F->ConstValue = false;
  return F;
}

Formula *System::apply(RelId Rel, std::vector<Term> Args) {
  Formula *F = make(FormulaKind::RelApp);
  F->Rel = Rel;
  F->Args = std::move(Args);
  return F;
}

Formula *System::applyVars(RelId Rel, const std::vector<VarId> &Args) {
  std::vector<Term> Terms;
  Terms.reserve(Args.size());
  for (VarId V : Args)
    Terms.push_back(Term::var(V));
  return apply(Rel, std::move(Terms));
}

Formula *System::eqVar(VarId Lhs, VarId Rhs) {
  Formula *F = make(FormulaKind::EqVar);
  F->Lhs = Lhs;
  F->Rhs = Rhs;
  return F;
}

Formula *System::eqConst(VarId Lhs, uint64_t Value) {
  Formula *F = make(FormulaKind::EqConst);
  F->Lhs = Lhs;
  F->Value = Value;
  return F;
}

Formula *System::mkNot(Formula *Body) {
  Formula *F = make(FormulaKind::Not);
  F->Children = {Body};
  return F;
}

Formula *System::mkAnd(std::vector<Formula *> Children) {
  assert(!Children.empty() && "empty conjunction; use top()");
  if (Children.size() == 1)
    return Children.front();
  Formula *F = make(FormulaKind::And);
  F->Children = std::move(Children);
  return F;
}

Formula *System::mkOr(std::vector<Formula *> Children) {
  assert(!Children.empty() && "empty disjunction; use bottom()");
  if (Children.size() == 1)
    return Children.front();
  Formula *F = make(FormulaKind::Or);
  F->Children = std::move(Children);
  return F;
}

Formula *System::exists(std::vector<VarId> Bound, Formula *Body) {
  Formula *F = make(FormulaKind::Exists);
  F->Bound = std::move(Bound);
  F->Body = Body;
  return F;
}

Formula *System::forall(std::vector<VarId> Bound, Formula *Body) {
  Formula *F = make(FormulaKind::Forall);
  F->Bound = std::move(Bound);
  F->Body = Body;
  return F;
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

bool System::validateFormula(const Formula &F, DiagnosticEngine &Diags,
                             const std::string &Context) const {
  bool Ok = true;
  switch (F.Kind) {
  case FormulaKind::Const:
    break;
  case FormulaKind::RelApp: {
    if (F.Rel >= Rels.size()) {
      Diags.error({}, Context + ": application of unknown relation");
      return false;
    }
    const Relation &R = Rels[F.Rel];
    if (F.Args.size() != R.arity()) {
      Diags.error({}, Context + ": '" + R.Name + "' applied to " +
                          std::to_string(F.Args.size()) +
                          " arguments; arity is " +
                          std::to_string(R.arity()));
      Ok = false;
      break;
    }
    for (size_t I = 0; I < F.Args.size(); ++I) {
      const Term &T = F.Args[I];
      DomainId Expected = Vars[R.Formals[I]].Dom;
      if (T.IsConst) {
        if (T.Value >= Domains[Expected].Size) {
          Diags.error({}, Context + ": constant " +
                              std::to_string(T.Value) + " outside domain '" +
                              Domains[Expected].Name + "' in '" + R.Name +
                              "'");
          Ok = false;
        }
      } else if (T.Variable >= Vars.size()) {
        Diags.error({}, Context + ": unknown variable in application");
        Ok = false;
      } else if (Vars[T.Variable].Dom != Expected) {
        Diags.error({}, Context + ": argument " + std::to_string(I) +
                            " of '" + R.Name + "' has domain '" +
                            Domains[Vars[T.Variable].Dom].Name +
                            "'; expected '" + Domains[Expected].Name + "'");
        Ok = false;
      }
    }
    break;
  }
  case FormulaKind::EqVar:
    if (F.Lhs >= Vars.size() || F.Rhs >= Vars.size()) {
      Diags.error({}, Context + ": equality over unknown variable");
      return false;
    }
    if (Vars[F.Lhs].Dom != Vars[F.Rhs].Dom) {
      Diags.error({}, Context + ": equality between '" + Vars[F.Lhs].Name +
                          "' and '" + Vars[F.Rhs].Name +
                          "' of different domains");
      Ok = false;
    }
    break;
  case FormulaKind::EqConst:
    if (F.Lhs >= Vars.size()) {
      Diags.error({}, Context + ": equality over unknown variable");
      return false;
    }
    if (F.Value >= Domains[Vars[F.Lhs].Dom].Size) {
      Diags.error({}, Context + ": constant " + std::to_string(F.Value) +
                          " outside domain of '" + Vars[F.Lhs].Name + "'");
      Ok = false;
    }
    break;
  case FormulaKind::Not:
    assert(F.Children.size() == 1 && "negation is unary");
    Ok &= validateFormula(*F.Children[0], Diags, Context);
    break;
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const Formula *Child : F.Children)
      Ok &= validateFormula(*Child, Diags, Context);
    break;
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    for (VarId V : F.Bound)
      if (V >= Vars.size()) {
        Diags.error({}, Context + ": quantification over unknown variable");
        Ok = false;
      }
    Ok &= validateFormula(*F.Body, Diags, Context);
    break;
  }
  return Ok;
}

bool System::validate(DiagnosticEngine &Diags) const {
  bool Ok = true;
  for (const Relation &R : Rels)
    if (R.Def)
      Ok &= validateFormula(*R.Def, Diags, "in definition of '" + R.Name +
                                               "'");
  return Ok;
}

void System::collectRels(const Formula &F, std::vector<RelId> &Out) const {
  switch (F.Kind) {
  case FormulaKind::RelApp:
    Out.push_back(F.Rel);
    break;
  case FormulaKind::Not:
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const Formula *Child : F.Children)
      collectRels(*Child, Out);
    break;
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    collectRels(*F.Body, Out);
    break;
  default:
    break;
  }
}

bool System::dependsOn(RelId Rel, RelId Target) const {
  std::set<RelId> Visited;
  std::vector<RelId> Stack{Rel};
  while (!Stack.empty()) {
    RelId Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur).second)
      continue;
    const Relation &R = Rels[Cur];
    if (!R.Def)
      continue;
    std::vector<RelId> Used;
    collectRels(*R.Def, Used);
    for (RelId U : Used) {
      if (U == Target)
        return true;
      Stack.push_back(U);
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Dependency analysis
//===----------------------------------------------------------------------===//

const char *fpc::strategyName(EvalStrategy S) {
  return S == EvalStrategy::Naive ? "naive" : "semi-naive";
}

const char *fpc::cofactorModeName(CofactorMode M) {
  switch (M) {
  case CofactorMode::Off:
    return "off";
  case CofactorMode::Constrain:
    return "constrain";
  case CofactorMode::Restrict:
    return "restrict";
  }
  return "?";
}

bool fpc::parseCofactorMode(const std::string &Name, CofactorMode &Out) {
  for (CofactorMode M : {CofactorMode::Off, CofactorMode::Constrain,
                         CofactorMode::Restrict})
    if (Name == cofactorModeName(M)) {
      Out = M;
      return true;
    }
  return false;
}

namespace {

/// Collects the relations applied in \p F, split by the parity of the
/// negations above each occurrence. Forall is monotone and does not flip.
void collectByPolarity(const Formula &F, bool Negated,
                       std::vector<RelId> &Pos, std::vector<RelId> &Neg) {
  switch (F.Kind) {
  case FormulaKind::RelApp:
    (Negated ? Neg : Pos).push_back(F.Rel);
    break;
  case FormulaKind::Not:
    collectByPolarity(*F.Children[0], !Negated, Pos, Neg);
    break;
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const Formula *Child : F.Children)
      collectByPolarity(*Child, Negated, Pos, Neg);
    break;
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    collectByPolarity(*F.Body, Negated, Pos, Neg);
    break;
  default:
    break;
  }
}

void sortUnique(std::vector<RelId> &V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
}

/// Iterative Tarjan SCC over the dependency edges. Emits SCCs in reverse
/// topological order (callees before callers), which is exactly the
/// scheduling order the evaluator wants.
struct TarjanScc {
  const std::vector<std::vector<RelId>> &Deps;
  std::vector<unsigned> Index, Low;
  std::vector<bool> OnStack;
  std::vector<RelId> Stack;
  unsigned Counter = 0;
  std::vector<unsigned> SccIndex;
  std::vector<std::vector<RelId>> Sccs;

  explicit TarjanScc(const std::vector<std::vector<RelId>> &Deps)
      : Deps(Deps), Index(Deps.size(), UINT32_MAX), Low(Deps.size(), 0),
        OnStack(Deps.size(), false), SccIndex(Deps.size(), 0) {
    for (RelId R = 0; R < Deps.size(); ++R)
      if (Index[R] == UINT32_MAX)
        run(R);
  }

  void run(RelId Root) {
    // Explicit DFS stack: (node, next child position).
    std::vector<std::pair<RelId, size_t>> Work{{Root, 0}};
    while (!Work.empty()) {
      auto &[R, Child] = Work.back();
      if (Child == 0) {
        Index[R] = Low[R] = Counter++;
        Stack.push_back(R);
        OnStack[R] = true;
      }
      if (Child < Deps[R].size()) {
        RelId Next = Deps[R][Child++];
        if (Index[Next] == UINT32_MAX) {
          Work.emplace_back(Next, 0);
        } else if (OnStack[Next]) {
          Low[R] = std::min(Low[R], Index[Next]);
        }
        continue;
      }
      if (Low[R] == Index[R]) {
        std::vector<RelId> Scc;
        RelId Member;
        do {
          Member = Stack.back();
          Stack.pop_back();
          OnStack[Member] = false;
          SccIndex[Member] = unsigned(Sccs.size());
          Scc.push_back(Member);
        } while (Member != R);
        Sccs.push_back(std::move(Scc));
      }
      RelId Done = R;
      Work.pop_back();
      if (!Work.empty())
        Low[Work.back().first] =
            std::min(Low[Work.back().first], Low[Done]);
    }
  }
};

} // namespace

DependencyGraph::DependencyGraph(const System &Sys) : Sys(Sys) {
  unsigned N = Sys.numRels();
  Deps.resize(N);
  NegDeps.resize(N);
  Recursive.assign(N, false);
  MonotoneSelf.assign(N, true);
  Closure.resize(N);

  for (RelId R = 0; R < N; ++R) {
    const Relation &Rel = Sys.relation(R);
    if (!Rel.Def)
      continue;
    std::vector<RelId> Pos, Neg;
    collectByPolarity(*Rel.Def, false, Pos, Neg);
    // Dependencies are on *defined* relations only; inputs are constants.
    auto OnlyDefined = [&](std::vector<RelId> &V) {
      V.erase(std::remove_if(V.begin(), V.end(),
                             [&](RelId T) {
                               return Sys.relation(T).isInput();
                             }),
              V.end());
      sortUnique(V);
    };
    // NegDeps keeps input relations too? No: monotonicity cycles can only
    // pass through defined relations, and inputs never close a cycle.
    OnlyDefined(Pos);
    OnlyDefined(Neg);
    Deps[R] = Pos;
    for (RelId T : Neg)
      if (std::find(Deps[R].begin(), Deps[R].end(), T) == Deps[R].end())
        Deps[R].push_back(T);
    sortUnique(Deps[R]);
    NegDeps[R] = std::move(Neg);
  }

  TarjanScc Scc(Deps);
  SccIndex = std::move(Scc.SccIndex);
  SccMembers = std::move(Scc.Sccs);

  // Transitive closure, SCC order (callees first): Closure[R] = direct
  // deps plus their closures.
  for (const std::vector<RelId> &Members : SccMembers)
    for (RelId R : Members) {
      std::vector<RelId> Out = Deps[R];
      for (RelId D : Deps[R]) {
        // Same-SCC members may not be closed yet; the loop below patches
        // intra-SCC reachability wholesale.
        Out.insert(Out.end(), Closure[D].begin(), Closure[D].end());
      }
      sortUnique(Out);
      Closure[R] = std::move(Out);
    }
  // Within an SCC every member reaches every other (and itself).
  for (const std::vector<RelId> &Members : SccMembers) {
    if (Members.size() == 1) {
      RelId R = Members.front();
      Recursive[R] = std::binary_search(Closure[R].begin(),
                                        Closure[R].end(), R);
      continue;
    }
    std::vector<RelId> Union;
    for (RelId R : Members)
      Union.insert(Union.end(), Closure[R].begin(), Closure[R].end());
    Union.insert(Union.end(), Members.begin(), Members.end());
    sortUnique(Union);
    for (RelId R : Members) {
      Closure[R] = Union;
      Recursive[R] = true;
    }
  }

  // MonotoneSelf[R]: no negative edge (Q -neg-> T) lies on a cycle through
  // R, i.e. R reaches Q and T reaches R.
  for (RelId R = 0; R < N; ++R) {
    if (!Recursive[R])
      continue; // Trivially monotone: nothing iterates.
    bool Ok = true;
    for (RelId Q = 0; Q < N && Ok; ++Q) {
      if (NegDeps[Q].empty())
        continue;
      bool RReachesQ = Q == R || reaches(R, Q);
      if (!RReachesQ)
        continue;
      for (RelId T : NegDeps[Q])
        if (T == R || reaches(T, R)) {
          Ok = false;
          break;
        }
    }
    MonotoneSelf[R] = Ok;
  }
}

bool DependencyGraph::reaches(RelId Rel, RelId Target) const {
  return std::binary_search(Closure[Rel].begin(), Closure[Rel].end(),
                            Target);
}

std::vector<RelId> DependencyGraph::scheduleFor(RelId Rel) const {
  std::vector<RelId> Out;
  unsigned Home = SccIndex[Rel];
  // SCC numbering is callees-first, so a single ascending sweep over the
  // SCCs that Rel depends on yields a valid topological schedule.
  for (unsigned S = 0; S < SccMembers.size(); ++S) {
    if (S == Home)
      continue;
    for (RelId Member : SccMembers[S]) {
      if (Member == Rel || Sys.relation(Member).isInput())
        continue;
      if (reaches(Rel, Member))
        Out.push_back(Member);
    }
  }
  return Out;
}

unsigned fpc::definedCondensationWidth(const System &Sys,
                                       const DependencyGraph &Deps) {
  std::vector<bool> Seen(Deps.sccs().size(), false);
  unsigned Width = 0;
  for (RelId R = 0; R < Sys.numRels(); ++R) {
    if (Sys.relation(R).isInput())
      continue;
    unsigned S = Deps.sccOf(R);
    if (!Seen[S]) {
      Seen[S] = true;
      ++Width;
    }
  }
  return Width;
}

namespace {

/// Does \p F transitively depend on \p Rel? (Direct application, or an
/// application of a defined relation that reaches \p Rel.)
bool formulaDependsOn(const System &Sys, const DependencyGraph &G,
                      const Formula &F, RelId Rel) {
  switch (F.Kind) {
  case FormulaKind::RelApp:
    return F.Rel == Rel ||
           (!Sys.relation(F.Rel).isInput() && G.reaches(F.Rel, Rel));
  case FormulaKind::Not:
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const Formula *Child : F.Children)
      if (formulaDependsOn(Sys, G, *Child, Rel))
        return true;
    return false;
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    return formulaDependsOn(Sys, G, *F.Body, Rel);
  default:
    return false;
  }
}

/// Classifies one disjunct: walks it through And/Or/Exists; every
/// \p Rel-dependent subformula must be a direct application of \p Rel for
/// the disjunct to distribute. Returns false (opaque) otherwise.
/// \p Path holds the nodes from the disjunct root to the current one.
bool classifyDistributive(const System &Sys, const DependencyGraph &G,
                          const Formula &F, RelId Rel,
                          std::vector<const Formula *> &Path,
                          std::vector<SelfOccurrence> &Occurrences) {
  Path.push_back(&F);
  bool Ok = true;
  switch (F.Kind) {
  case FormulaKind::RelApp:
    if (F.Rel == Rel)
      Occurrences.push_back(SelfOccurrence{&F, Path});
    else
      // A different defined relation that reaches Rel would be re-solved
      // under the round's interpretation: not distributive.
      Ok = Sys.relation(F.Rel).isInput() || !G.reaches(F.Rel, Rel);
    break;
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const Formula *Child : F.Children)
      if (!classifyDistributive(Sys, G, *Child, Rel, Path, Occurrences)) {
        Ok = false;
        break;
      }
    break;
  case FormulaKind::Exists:
    Ok = classifyDistributive(Sys, G, *F.Body, Rel, Path, Occurrences);
    break;
  case FormulaKind::Not:
  case FormulaKind::Forall:
    // Not breaks monotonicity, Forall breaks distributivity over union —
    // unless nothing below depends on Rel at all.
    Ok = !formulaDependsOn(Sys, G, F, Rel);
    break;
  default:
    break; // Const / EqVar / EqConst.
  }
  Path.pop_back();
  return Ok;
}

} // namespace

EquationPlan fpc::planEquation(const System &Sys, const DependencyGraph &G,
                               RelId Rel) {
  const Relation &R = Sys.relation(Rel);
  assert(R.Def && "planning an input relation");

  EquationPlan Plan;
  // Union accumulation requires an increasing Tarski chain: mu equations
  // whose self-cycles are negation-free. Everything else runs naively.
  Plan.SemiNaive = !R.IsNu && G.isMonotoneSelf(Rel);

  std::vector<const Formula *> Disjuncts;
  if (R.Def->Kind == FormulaKind::Or)
    for (const Formula *Child : R.Def->Children)
      Disjuncts.push_back(Child);
  else
    Disjuncts.push_back(R.Def);

  for (const Formula *D : Disjuncts) {
    DisjunctPlan DP;
    DP.Node = D;
    std::vector<const Formula *> Path;
    if (!formulaDependsOn(Sys, G, *D, Rel)) {
      DP.Kind = DisjunctKind::NonRecursive;
    } else if (classifyDistributive(Sys, G, *D, Rel, Path,
                                    DP.Occurrences)) {
      DP.Kind = DisjunctKind::Distributive;
      assert(!DP.Occurrences.empty() &&
             "dependent disjunct with no self-app");
      // A RelApp node shared between two tree positions would make one
      // frontier pass substitute both at once (losing the Δ×S cross
      // terms); builders do not share nodes today, but stay sound if one
      // ever does.
      std::vector<const Formula *> Apps;
      for (const SelfOccurrence &Occ : DP.Occurrences)
        Apps.push_back(Occ.App);
      std::sort(Apps.begin(), Apps.end());
      if (std::adjacent_find(Apps.begin(), Apps.end()) != Apps.end()) {
        DP.Kind = DisjunctKind::Opaque;
        DP.Occurrences.clear();
      }
    } else {
      DP.Kind = DisjunctKind::Opaque;
      DP.Occurrences.clear();
    }
    Plan.Disjuncts.push_back(std::move(DP));
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// Printing (MUCKE-like concrete syntax)
//===----------------------------------------------------------------------===//

std::string System::printFormula(const Formula &F) const {
  switch (F.Kind) {
  case FormulaKind::Const:
    return F.ConstValue ? "true" : "false";
  case FormulaKind::RelApp: {
    std::string Out = Rels[F.Rel].Name + "(";
    for (size_t I = 0; I < F.Args.size(); ++I) {
      if (I)
        Out += ", ";
      const Term &T = F.Args[I];
      Out += T.IsConst ? std::to_string(T.Value) : Vars[T.Variable].Name;
    }
    return Out + ")";
  }
  case FormulaKind::EqVar:
    return Vars[F.Lhs].Name + " = " + Vars[F.Rhs].Name;
  case FormulaKind::EqConst:
    return Vars[F.Lhs].Name + " = " + std::to_string(F.Value);
  case FormulaKind::Not:
    return "!(" + printFormula(*F.Children[0]) + ")";
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::string Sep = F.Kind == FormulaKind::And ? " & " : " | ";
    std::string Out = "(";
    for (size_t I = 0; I < F.Children.size(); ++I) {
      if (I)
        Out += Sep;
      Out += printFormula(*F.Children[I]);
    }
    return Out + ")";
  }
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    std::string Out = F.Kind == FormulaKind::Exists ? "exists " : "forall ";
    for (size_t I = 0; I < F.Bound.size(); ++I) {
      if (I)
        Out += ", ";
      const Var &V = Vars[F.Bound[I]];
      Out += Domains[V.Dom].Name + " " + V.Name;
    }
    return Out + ". (" + printFormula(*F.Body) + ")";
  }
  }
  return "<?>";
}

std::string System::print() const {
  std::string Out;
  for (const Domain &D : Domains) {
    if (D.ExplicitBits != 0)
      Out += "domain " + D.Name + " [bits " + std::to_string(D.ExplicitBits) +
             "];\n";
    else
      Out += "domain " + D.Name + " [" + std::to_string(D.Size) + "];\n";
  }
  Out += '\n';
  for (const Relation &R : Rels) {
    Out += R.Def ? (R.IsNu ? "nu bool " : "mu bool ") : "input bool ";
    Out += R.Name + "(";
    for (size_t I = 0; I < R.Formals.size(); ++I) {
      if (I)
        Out += ", ";
      const Var &V = Vars[R.Formals[I]];
      Out += Domains[V.Dom].Name + " " + V.Name;
    }
    Out += ")";
    if (R.Def)
      Out += " :=\n  " + printFormula(*R.Def) + ";\n";
    else
      Out += ";\n";
    Out += '\n';
  }
  return Out;
}
