//===- getafixd.cpp - The Getafix query-server daemon ---------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Long-lived multi-program reachability server. Accepts the line-oriented
/// JSON protocol of src/server/Protocol.h on a loopback TCP port or a
/// Unix-domain socket and answers `solve` requests through a
/// memory-budgeted pool of `SolverSession`s, so repeated queries against
/// the same program reuse its compiled calculus and solved summaries.
///
///   getafixd [options]
///     --port N           TCP port (default 0 = kernel-assigned; the bound
///                        port is printed on stdout as "listening PORT")
///     --host H           bind address (default 127.0.0.1)
///     --socket PATH      serve a Unix-domain socket instead of TCP
///     --port-file PATH   also write the bound port to PATH (for scripts)
///     --workers N        connection worker threads (default 4)
///     --budget-mb N      session-pool memory budget; over it, LRU
///                        sessions first get their computed cache cleared,
///                        then are evicted (0 = unbounded, the default)
///     --max-sessions N   hard cap on resident sessions (0 = unbounded)
///     --no-inline        reject requests with inline 'source' text
///     --default-timeout-ms N
///                        deadline for solve requests that carry no
///                        `timeout_ms` field (0 = none, the default)
///     --max-timeout-ms N upper bound on any request's deadline; binds
///                        even requests that asked for none, so no client
///                        can pin a session forever (0 = uncapped)
///     --node-budget N    BDD node budget per solve request; a client's
///                        `node_budget` may only lower it (0 = unlimited).
///                        A tripped limit yields a structured error row
///                        (`hit_deadline` / `hit_node_budget` /
///                        `cancelled`); the session stays valid and a
///                        retry with a larger budget resumes exactly
///     --algo NAME        default engine for every session
///     --threads N        evaluator worker threads per solve (parallel
///                        SCC scheduling + intra-SCC disjunct fan-out);
///                        pooled sessions keep their worker pool warm
///                        across queries, and the `stats` response reports
///                        the setting
///     --disjunct-threshold N
///                        cost gate of the intra-SCC parallelism (0 =
///                        auto; see getafix --disjunct-threshold)
///     --monolithic-summary
///                        compile the single whole-program summary
///                        relation instead of the default per-procedure
///                        split (see getafix --monolithic-summary); the
///                        `stats` response reports the resulting
///                        condensation width
///     --cache-bits N     BDD computed cache of 2^N entries
///     --context-bound K / --rounds R / --round-robin
///                        concurrent-program knobs (as in getafix)
///     --strategy S       naive | semi-naive
///     --max-iterations N cap fixpoint rounds per query
///
/// SIGINT/SIGTERM shut down gracefully: stop accepting, drain in-flight
/// requests, print final statistics, exit 0.
///
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace getafix;

namespace {

server::Server *ActiveServer = nullptr;

void onSignal(int) {
  // Async-signal-safe: one write to the server's self-pipe.
  if (ActiveServer)
    ActiveServer->notifyShutdownFromSignal();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: getafixd [--port N] [--host H] [--socket PATH] "
      "[--port-file PATH]\n"
      "                [--workers N] [--budget-mb N] [--max-sessions N] "
      "[--no-inline]\n"
      "                [--default-timeout-ms N] [--max-timeout-ms N] "
      "[--node-budget N]\n"
      "                [--algo NAME] [--threads N] "
      "[--disjunct-threshold N] [--cache-bits N]\n"
      "                [--context-bound K] [--rounds R] [--round-robin]\n"
      "                [--monolithic-summary]\n"
      "                [--strategy naive|semi-naive] [--max-iterations N]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  server::ServerOptions Opts;
  std::string PortFile;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *V;
    if (Arg == "--port") {
      if (!(V = Next()))
        return usage();
      Opts.Port = unsigned(std::atoi(V));
    } else if (Arg == "--host") {
      if (!(V = Next()))
        return usage();
      Opts.Host = V;
    } else if (Arg == "--socket") {
      if (!(V = Next()))
        return usage();
      Opts.UnixPath = V;
    } else if (Arg == "--port-file") {
      if (!(V = Next()))
        return usage();
      PortFile = V;
    } else if (Arg == "--workers") {
      if (!(V = Next()))
        return usage();
      int N = std::atoi(V);
      if (N < 1 || N > 256)
        return usage();
      Opts.Workers = unsigned(N);
    } else if (Arg == "--budget-mb") {
      if (!(V = Next()))
        return usage();
      Opts.Pool.MemoryBudgetBytes = size_t(std::atoll(V)) * 1024 * 1024;
    } else if (Arg == "--budget-bytes") {
      // Undocumented fine-grained knob for tests/CI (small budgets that
      // force the valve and eviction on tiny programs).
      if (!(V = Next()))
        return usage();
      Opts.Pool.MemoryBudgetBytes = size_t(std::atoll(V));
    } else if (Arg == "--max-sessions") {
      if (!(V = Next()))
        return usage();
      Opts.Pool.MaxResidentSessions = size_t(std::atoll(V));
    } else if (Arg == "--no-inline") {
      Opts.AllowInlineSource = false;
    } else if (Arg == "--default-timeout-ms") {
      if (!(V = Next()))
        return usage();
      Opts.DefaultTimeoutMs = uint64_t(std::atoll(V));
    } else if (Arg == "--max-timeout-ms") {
      if (!(V = Next()))
        return usage();
      Opts.MaxTimeoutMs = uint64_t(std::atoll(V));
    } else if (Arg == "--node-budget") {
      if (!(V = Next()))
        return usage();
      Opts.NodeBudgetCap = uint64_t(std::atoll(V));
    } else if (Arg == "--algo") {
      if (!(V = Next()))
        return usage();
      Opts.Pool.Solver.Engine = V;
    } else if (Arg == "--threads") {
      if (!(V = Next()))
        return usage();
      int N = std::atoi(V);
      if (N < 1 || N > 256)
        return usage();
      Opts.Pool.Solver.Threads = unsigned(N);
    } else if (Arg == "--disjunct-threshold") {
      if (!(V = Next()))
        return usage();
      Opts.Pool.Solver.DisjunctParallelThreshold =
          uint64_t(std::atoll(V));
    } else if (Arg == "--cache-bits") {
      if (!(V = Next()))
        return usage();
      int Bits = std::atoi(V);
      if (Bits < 2 || Bits > 30)
        return usage();
      Opts.Pool.Solver.CacheBits = unsigned(Bits);
    } else if (Arg == "--context-bound") {
      if (!(V = Next()))
        return usage();
      Opts.Pool.Solver.ContextBound = unsigned(std::atoi(V));
    } else if (Arg == "--rounds") {
      if (!(V = Next()))
        return usage();
      Opts.Pool.Solver.Rounds = unsigned(std::atoi(V));
      Opts.Pool.Solver.RoundRobin = true;
    } else if (Arg == "--round-robin") {
      Opts.Pool.Solver.RoundRobin = true;
    } else if (Arg == "--monolithic-summary") {
      Opts.Pool.Solver.MonolithicSummary = true;
    } else if (Arg == "--strategy") {
      if (!(V = Next()))
        return usage();
      if (std::string(V) == "naive")
        Opts.Pool.Solver.Strategy = fpc::EvalStrategy::Naive;
      else if (std::string(V) == "semi-naive")
        Opts.Pool.Solver.Strategy = fpc::EvalStrategy::SemiNaive;
      else
        return usage();
    } else if (Arg == "--max-iterations") {
      if (!(V = Next()))
        return usage();
      Opts.Pool.Solver.MaxIterations = uint64_t(std::atoll(V));
    } else {
      return usage();
    }
  }

  server::Server S(Opts);
  std::string Error;
  if (!S.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }

  ActiveServer = &S;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSignal;
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
  signal(SIGPIPE, SIG_IGN);

  if (Opts.UnixPath.empty()) {
    std::printf("listening %u\n", S.port());
    if (!PortFile.empty()) {
      std::ofstream PF(PortFile);
      PF << S.port() << "\n";
    }
  } else {
    std::printf("listening %s\n", Opts.UnixPath.c_str());
  }
  std::fflush(stdout);

  S.wait(); // Returns after graceful drain.
  ActiveServer = nullptr;

  server::ServerStats SS = S.stats();
  server::PoolStats PS = S.pool().stats();
  std::printf("shutdown: %llu connections, %llu requests, %llu solves, "
              "%llu targets, %llu limit-stops, %llu watchdog-cancels, "
              "%llu contained-faults; pool: %llu opens, %llu reopens, "
              "%llu cache-clears, %llu evictions, %llu poisoned\n",
              (unsigned long long)SS.Connections,
              (unsigned long long)SS.Requests,
              (unsigned long long)SS.SolveRequests,
              (unsigned long long)SS.TargetsSolved,
              (unsigned long long)SS.LimitStops,
              (unsigned long long)SS.WatchdogCancels,
              (unsigned long long)SS.ContainedFaults,
              (unsigned long long)PS.Opens, (unsigned long long)PS.Reopens,
              (unsigned long long)PS.CacheClears,
              (unsigned long long)PS.Evictions,
              (unsigned long long)PS.PoisonedEvictions);
  return 0;
}
