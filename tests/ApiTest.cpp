//===- ApiTest.cpp - Solver facade and engine registry tests --------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the `getafix::Solver` facade: one fixture program is answered
/// identically by every registered engine (sequential engines on the
/// sequential rendering, concurrent engines on a one-thread concurrent
/// wrapper of the same body), error statuses come back for unknown labels
/// and unknown engines, and the options plumbing (rounds, witness
/// requests, stats alignment) behaves.
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"

#include "bp/Parser.h"
#include "gen/Workloads.h"
#include "reach/Witness.h"

#include <gtest/gtest.h>

using namespace getafix;

namespace {

/// The fixture body: a recursive lock-discipline model whose ERR label is
/// reachable (a double acquire via the recursive call), plus a SAFE label
/// that is not.
const char *FixtureBody = R"(
main() begin
  locked := F;
  call work(F);
end
work(nested) begin
  if (locked) then
    ERR: skip;
  else
    locked := T;
  fi
  if (!nested) then
    call work(T);
  fi
  if (locked & !locked) then
    SAFE: skip;
  fi
  locked := F;
end
)";

std::string seqFixture() { return std::string("decl locked;\n") + FixtureBody; }

/// The same body as a one-thread concurrent program (`locked` becomes
/// shared), so the concurrent engines answer the same question.
std::string concFixture() {
  return std::string("shared decl locked;\nthread\n") + FixtureBody + "end\n";
}

SolveResult solveWith(const std::string &EngineName, const std::string &Src,
                      const std::string &Label) {
  SolverOptions Opts;
  Opts.Engine = EngineName;
  return Solver::solve(Query::fromSource(Src).target(Label), Opts);
}

} // namespace

TEST(ApiTest, RegistryHasTheEightEngines) {
  for (const char *Name : {"summary", "ef", "ef-split", "ef-opt", "moped",
                           "bebop", "conc", "lal-reps"}) {
    const api::Engine *E = Solver::findEngine(Name);
    ASSERT_NE(E, nullptr) << Name;
    EXPECT_STREQ(E->name(), Name);
    EXPECT_STRNE(E->description(), "");
  }
  EXPECT_EQ(Solver::findEngine("no-such-engine"), nullptr);
  EXPECT_GE(Solver::engines().size(), 8u);
}

TEST(ApiTest, AllEnginesAgreeOnTheFixture) {
  for (const std::string &Label : {std::string("ERR"), std::string("SAFE")}) {
    bool Expected = Label == "ERR";
    for (const api::Engine *E : Solver::engines()) {
      SolveResult R = solveWith(
          E->name(), E->handlesConcurrent() ? concFixture() : seqFixture(),
          Label);
      ASSERT_TRUE(R.ok()) << E->name() << ": " << R.Error;
      EXPECT_EQ(R.Reachable, Expected) << E->name() << " on " << Label;
    }
  }
}

TEST(ApiTest, UnknownLabelReportsTargetNotFound) {
  for (const std::string &Src : {seqFixture(), concFixture()}) {
    SolveResult R = Solver::solve(Query::fromSource(Src).target("NOPE"),
                                  SolverOptions());
    EXPECT_EQ(R.Status, SolveStatus::TargetNotFound);
    EXPECT_NE(R.Error.find("NOPE"), std::string::npos) << R.Error;
  }
}

TEST(ApiTest, UnknownEngineReportsUnknownEngine) {
  SolverOptions Opts;
  Opts.Engine = "mucke-classic";
  SolveResult R =
      Solver::solve(Query::fromSource(seqFixture()).target("ERR"), Opts);
  EXPECT_EQ(R.Status, SolveStatus::UnknownEngine);
  // The message names the engine and lists what is available.
  EXPECT_NE(R.Error.find("mucke-classic"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("ef-split"), std::string::npos) << R.Error;
}

TEST(ApiTest, EngineKindMismatchIsRejected) {
  SolverOptions Opts;
  Opts.Engine = "conc";
  EXPECT_EQ(Solver::solve(Query::fromSource(seqFixture()).target("ERR"), Opts)
                .Status,
            SolveStatus::BadQuery);
  Opts.Engine = "ef-opt";
  EXPECT_EQ(Solver::solve(Query::fromSource(concFixture()).target("ERR"), Opts)
                .Status,
            SolveStatus::BadQuery);
}

TEST(ApiTest, ParseErrorsSurfaceDiagnostics) {
  SolveResult R = Solver::solve(Query::fromSource("main() begin oops"),
                                SolverOptions());
  EXPECT_EQ(R.Status, SolveStatus::ParseError);
  EXPECT_FALSE(R.Error.empty());
}

TEST(ApiTest, DefaultEngineFollowsQueryKind) {
  // Empty engine name: ef-opt for sequential sources, conc for concurrent.
  SolverOptions Auto;
  EXPECT_TRUE(
      Solver::solve(Query::fromSource(seqFixture()).target("ERR"), Auto)
          .ok());
  EXPECT_TRUE(
      Solver::solve(Query::fromSource(concFixture()).target("ERR"), Auto)
          .ok());
}

TEST(ApiTest, PrebuiltProgramsAndPointTargets) {
  DiagnosticEngine Diags;
  auto Prog = bp::parseProgram(seqFixture(), Diags);
  ASSERT_TRUE(Prog != nullptr) << Diags.str();
  bp::ProgramCfg Cfg = bp::buildCfg(*Prog);

  unsigned ProcId = 0, Pc = 0;
  ASSERT_TRUE(Cfg.findLabelPc("ERR", ProcId, Pc));

  for (const char *Name : {"summary", "ef", "ef-split", "ef-opt", "moped",
                           "bebop"}) {
    SolverOptions Opts;
    Opts.Engine = Name;
    SolveResult R =
        Solver::solve(Query::fromCfg(Cfg).targetPoint(ProcId, Pc), Opts);
    ASSERT_TRUE(R.ok()) << Name << ": " << R.Error;
    EXPECT_TRUE(R.Reachable) << Name;
  }

  // Out-of-range points are rejected, not solved.
  SolveResult Bad = Solver::solve(Query::fromCfg(Cfg).targetPoint(99, 0),
                                  SolverOptions());
  EXPECT_EQ(Bad.Status, SolveStatus::TargetNotFound);
}

TEST(ApiTest, BddEnginesReportPeakLiveNodes) {
  // Stats alignment: every BDD-backed engine reports a nonzero peak;
  // the enumerative bebop stand-in reports 0 by design.
  for (const api::Engine *E : Solver::engines()) {
    SolveResult R = solveWith(
        E->name(), E->handlesConcurrent() ? concFixture() : seqFixture(),
        "ERR");
    ASSERT_TRUE(R.ok()) << E->name() << ": " << R.Error;
    if (std::string(E->name()) == "bebop")
      EXPECT_EQ(R.PeakLiveNodes, 0u);
    else
      EXPECT_GT(R.PeakLiveNodes, 0u) << E->name();
  }
}

TEST(ApiTest, WitnessRequestYieldsAVerifiedTrace) {
  DiagnosticEngine Diags;
  auto Prog = bp::parseProgram(seqFixture(), Diags);
  ASSERT_TRUE(Prog != nullptr) << Diags.str();
  bp::ProgramCfg Cfg = bp::buildCfg(*Prog);

  SolverOptions Opts;
  Opts.Engine = "ef";
  SolveResult R =
      Solver::solve(Query::fromCfg(Cfg).target("ERR").witness(), Opts);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.Reachable);
  ASSERT_TRUE(R.HasWitness);
  ASSERT_FALSE(R.Witness.empty());
  EXPECT_FALSE(R.WitnessText.empty());

  unsigned ProcId = 0, Pc = 0;
  ASSERT_TRUE(Cfg.findLabelPc("ERR", ProcId, Pc));
  std::string Error;
  EXPECT_TRUE(reach::verifyWitness(Cfg, R.Witness, ProcId, Pc, &Error))
      << Error;
}

TEST(ApiTest, RoundsOptionImpliesRoundRobin) {
  // A three-hop chain: thread 0 raises a flag thread 2 reports. One
  // round-robin round (k = 2) reaches it; a context bound of 1 does not.
  const char *Src = R"(
shared decl flag;
thread
main() begin
  flag := T;
end
end
thread
main() begin
  skip;
end
end
thread
main() begin
  if (flag) then ERR: skip; else skip; fi
end
end
)";
  SolverOptions Opts;
  Opts.Engine = "conc";
  Opts.Rounds = 1; // => k = 2 under round-robin.
  EXPECT_TRUE(Solver::solve(Query::fromSource(Src).target("ERR"), Opts)
                  .Reachable);
  Opts.Rounds = 0;
  Opts.ContextBound = 1;
  Opts.RoundRobin = true;
  EXPECT_FALSE(Solver::solve(Query::fromSource(Src).target("ERR"), Opts)
                   .Reachable);
}

TEST(ApiTest, FormulaTextComesThroughTheFacade) {
  // The printed system tracks the compilation the options select: the
  // per-procedure split by default, the paper's monolithic relation under
  // MonolithicSummary.
  SolverOptions Opts;
  Opts.Engine = "ef-split";
  std::string Error;
  std::string Text = Solver::formulaText(
      Query::fromSource(seqFixture()).target("ERR"), Opts, &Error);
  EXPECT_NE(Text.find("mu bool Summary_"), std::string::npos) << Error;
  EXPECT_EQ(Text.find("mu bool SummaryEF"), std::string::npos);

  Opts.MonolithicSummary = true;
  Text = Solver::formulaText(Query::fromSource(seqFixture()).target("ERR"),
                             Opts, &Error);
  EXPECT_NE(Text.find("mu bool SummaryEF"), std::string::npos) << Error;
  Opts.MonolithicSummary = false;

  // The formula does not depend on the target, so a program without the
  // queried label still prints one.
  Opts.Engine = "ef-split";
  Text = Solver::formulaText(
      Query::fromSource("main() begin skip; end").target("ERR"), Opts,
      &Error);
  EXPECT_NE(Text.find("mu bool Summary_"), std::string::npos) << Error;

  // Natively coded engines have no formula; the error says so.
  Opts.Engine = "moped";
  Text = Solver::formulaText(Query::fromSource(seqFixture()).target("ERR"),
                             Opts, &Error);
  EXPECT_TRUE(Text.empty());
  EXPECT_FALSE(Error.empty());
}

TEST(ApiTest, MaxIterationsSurfacesThroughTheFacade) {
  SolverOptions Opts;
  Opts.Engine = "ef-split";
  Opts.EarlyStop = false;
  Opts.MaxIterations = 1;
  SolveResult R =
      Solver::solve(Query::fromSource(seqFixture()).target("ERR"), Opts);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.HitIterationLimit);
  EXPECT_EQ(R.Iterations, 1u);
  // The fixture needs more than one round, so the truncated result must
  // not claim reachability.
  EXPECT_FALSE(R.Reachable);

  Opts.MaxIterations = 0; // Unlimited again.
  R = Solver::solve(Query::fromSource(seqFixture()).target("ERR"), Opts);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.HitIterationLimit);
  EXPECT_TRUE(R.Reachable);
}

TEST(ApiTest, StrategiesAgreeAcrossAllEngines) {
  // The tentpole differential: every registered engine must answer both
  // fixture queries identically under the naive and the semi-naive
  // strategy, with identical iterations-to-fixpoint for the fixed-point
  // engines (the delta core computes the same per-round sequence).
  for (const std::string &Label : {std::string("ERR"), std::string("SAFE")}) {
    for (const api::Engine *E : Solver::engines()) {
      std::string Src =
          E->handlesConcurrent() ? concFixture() : seqFixture();
      SolverOptions Opts;
      Opts.Engine = E->name();
      Opts.Strategy = fpc::EvalStrategy::Naive;
      SolveResult Naive =
          Solver::solve(Query::fromSource(Src).target(Label), Opts);
      Opts.Strategy = fpc::EvalStrategy::SemiNaive;
      SolveResult Semi =
          Solver::solve(Query::fromSource(Src).target(Label), Opts);
      ASSERT_TRUE(Naive.ok()) << E->name() << ": " << Naive.Error;
      ASSERT_TRUE(Semi.ok()) << E->name() << ": " << Semi.Error;
      EXPECT_EQ(Naive.Reachable, Semi.Reachable)
          << E->name() << " on " << Label;
      EXPECT_EQ(Naive.Iterations, Semi.Iterations)
          << E->name() << " on " << Label;
    }
  }
}

TEST(ApiTest, StrategiesAgreeOnWitnesses) {
  // Witness extraction replays the per-round onion rings; the semi-naive
  // core must record the identical ring sequence, hence the identical
  // trace, for every witness-capable engine.
  for (const api::Engine *E : Solver::engines()) {
    if (!E->supportsWitness() || E->handlesConcurrent())
      continue;
    SolverOptions Opts;
    Opts.Engine = E->name();
    Opts.Strategy = fpc::EvalStrategy::Naive;
    SolveResult Naive = Solver::solve(
        Query::fromSource(seqFixture()).target("ERR").witness(), Opts);
    Opts.Strategy = fpc::EvalStrategy::SemiNaive;
    SolveResult Semi = Solver::solve(
        Query::fromSource(seqFixture()).target("ERR").witness(), Opts);
    ASSERT_TRUE(Naive.ok() && Semi.ok()) << E->name();
    ASSERT_TRUE(Naive.HasWitness && Semi.HasWitness) << E->name();
    EXPECT_EQ(Naive.Iterations, Semi.Iterations) << E->name();
    EXPECT_EQ(Naive.WitnessText, Semi.WitnessText) << E->name();
  }
}

TEST(ApiTest, StrategiesAgreeOnRandomizedWorkloads) {
  // Generated driver/terminator programs (known ground truth) through the
  // default sequential engine under both strategies; verdicts, iteration
  // counts, and the expected answer must all line up.
  for (uint64_t Seed : {2u, 5u}) {
    for (bool Reachable : {true, false}) {
      gen::DriverParams P;
      P.NumProcs = 8;
      P.StmtsPerProc = 8;
      P.Reachable = Reachable;
      P.Seed = Seed;
      gen::Workload W = gen::driverProgram(P);
      SolverOptions Opts;
      Opts.Engine = "ef-split";
      Opts.Strategy = fpc::EvalStrategy::Naive;
      SolveResult Naive = Solver::solve(
          Query::fromSource(W.Source).target(W.TargetLabel), Opts);
      Opts.Strategy = fpc::EvalStrategy::SemiNaive;
      SolveResult Semi = Solver::solve(
          Query::fromSource(W.Source).target(W.TargetLabel), Opts);
      ASSERT_TRUE(Naive.ok()) << W.Name << ": " << Naive.Error;
      ASSERT_TRUE(Semi.ok()) << W.Name << ": " << Semi.Error;
      EXPECT_EQ(Naive.Reachable, Semi.Reachable) << W.Name;
      EXPECT_EQ(Naive.Iterations, Semi.Iterations) << W.Name;
      if (W.ExpectKnown) {
        EXPECT_EQ(Semi.Reachable, W.ExpectReachable) << W.Name;
      }
    }
  }
  gen::TerminatorParams T;
  T.CounterBits = 4;
  T.NumDeadVars = 2;
  T.Reachable = false;
  gen::Workload W = gen::terminatorProgram(T);
  SolverOptions Opts;
  Opts.Engine = "ef-split";
  Opts.Strategy = fpc::EvalStrategy::Naive;
  SolveResult Naive =
      Solver::solve(Query::fromSource(W.Source).target(W.TargetLabel), Opts);
  Opts.Strategy = fpc::EvalStrategy::SemiNaive;
  SolveResult Semi =
      Solver::solve(Query::fromSource(W.Source).target(W.TargetLabel), Opts);
  ASSERT_TRUE(Naive.ok() && Semi.ok());
  EXPECT_FALSE(Semi.Reachable);
  EXPECT_EQ(Naive.Reachable, Semi.Reachable);
  EXPECT_EQ(Naive.Iterations, Semi.Iterations);
  // The semi-naive run reports its delta rounds and per-relation stats.
  EXPECT_GT(Semi.DeltaRounds, 0u);
  EXPECT_FALSE(Semi.Relations.empty());
  EXPECT_GT(Semi.BddCacheLookups, 0u);
}

TEST(ApiTest, LalRepsAgreesWithConcOnTransformedStats) {
  SolveResult Ours = solveWith("conc", concFixture(), "ERR");
  SolveResult LR = solveWith("lal-reps", concFixture(), "ERR");
  ASSERT_TRUE(Ours.ok()) << Ours.Error;
  ASSERT_TRUE(LR.ok()) << LR.Error;
  EXPECT_EQ(Ours.Reachable, LR.Reachable);
  // The eager reduction materializes extra shared-variable copies as real
  // program globals; the facade surfaces that cost.
  EXPECT_GT(LR.TransformedGlobals, 1u);
}
