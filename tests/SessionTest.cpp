//===- SessionTest.cpp - Cross-query session differential tests ----------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential harness for cross-query incremental solving: for every
/// registered engine and a battery of programs (fixtures and randomized
/// generator output), `session.solve(q)` must produce bit-identical
/// verdicts, iteration counts, summary sizes, and witnesses to a fresh
/// `Solver::solve(q)` — for every permutation of query order, under
/// interleaved sessions over different programs, across mid-session
/// computed-cache clears, and for every frontier-cofactor mode. Reuse is
/// only allowed to show up in wall-clock and the `SummariesReused`
/// counters; this suite is what enforces that contract (the PR-2 class of
/// stale-memo / clobbered-delta-context bugs fails it immediately).
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"

#include "bp/Parser.h"
#include "gen/Workloads.h"
#include "reach/Witness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

using namespace getafix;

namespace {

/// The ApiTest fixture body: a recursive lock-discipline model whose ERR
/// label is reachable (a double acquire via the recursive call) and whose
/// SAFE label is not.
const char *FixtureBody = R"(
main() begin
  locked := F;
  call work(F);
end
work(nested) begin
  if (locked) then
    ERR: skip;
  else
    locked := T;
  fi
  if (!nested) then
    call work(T);
  fi
  if (locked & !locked) then
    SAFE: skip;
  fi
  locked := F;
end
)";

std::string seqFixture() { return std::string("decl locked;\n") + FixtureBody; }

std::string concFixture() {
  return std::string("shared decl locked;\nthread\n") + FixtureBody + "end\n";
}

/// Bit-identical comparison of the observables the session contract
/// covers. Wall-clock, BDD counters, and the cumulative Relations map are
/// deliberately excluded — those are exactly where reuse is allowed to
/// show.
void expectSameCore(const SolveResult &Fresh, const SolveResult &Sess,
                    const std::string &Context) {
  EXPECT_EQ(Fresh.Status, Sess.Status) << Context;
  EXPECT_EQ(Fresh.Reachable, Sess.Reachable) << Context;
  EXPECT_EQ(Fresh.HitIterationLimit, Sess.HitIterationLimit) << Context;
  EXPECT_EQ(Fresh.Iterations, Sess.Iterations) << Context;
  EXPECT_EQ(Fresh.DeltaRounds, Sess.DeltaRounds) << Context;
  EXPECT_EQ(Fresh.SummaryNodes, Sess.SummaryNodes) << Context;
  EXPECT_DOUBLE_EQ(Fresh.ReachStates, Sess.ReachStates) << Context;
  EXPECT_EQ(Fresh.HasWitness, Sess.HasWitness) << Context;
  EXPECT_EQ(Fresh.Witness.size(), Sess.Witness.size()) << Context;
  EXPECT_EQ(Fresh.WitnessText, Sess.WitnessText) << Context;
}

/// All permutations of {0, 1, ..., N-1}.
std::vector<std::vector<size_t>> permutationsOf(size_t N) {
  std::vector<size_t> Idx(N);
  for (size_t I = 0; I < N; ++I)
    Idx[I] = I;
  std::vector<std::vector<size_t>> Out;
  do {
    Out.push_back(Idx);
  } while (std::next_permutation(Idx.begin(), Idx.end()));
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Every engine, every query order
//===----------------------------------------------------------------------===//

TEST(SessionTest, AllEnginesMatchFreshForEveryQueryOrder) {
  // Three targets per engine — reachable, unreachable, and repeat-the-
  // reachable-one (repeats must replay, not re-derive) — solved in every
  // one of the six orders through a fresh session each time. Engines
  // without session support exercise the fresh-fallback path and must be
  // identical trivially; fixed-point engines must be identical by the
  // replay/resume construction.
  const std::vector<std::string> Labels = {"ERR", "SAFE", "ERR"};
  for (const api::Engine *E : Solver::engines()) {
    std::string Src =
        E->handlesConcurrent() ? concFixture() : seqFixture();
    SolverOptions Opts;
    Opts.Engine = E->name();

    std::vector<SolveResult> Fresh;
    for (const std::string &L : Labels)
      Fresh.push_back(Solver::solve(Query::fromSource(Src).target(L), Opts));

    for (const std::vector<size_t> &Perm : permutationsOf(Labels.size())) {
      std::unique_ptr<SolverSession> S =
          Solver::open(Query::fromSource(Src), Opts);
      ASSERT_TRUE(S->ok()) << E->name() << ": " << S->error();
      for (size_t I : Perm) {
        SolveResult R =
            S->solve(Query::fromSource("").target(Labels[I]));
        expectSameCore(Fresh[I], R,
                       std::string(E->name()) + " label " + Labels[I]);
      }
    }
  }
}

TEST(SessionTest, PointTargetsMatchFresh) {
  std::string Src = seqFixture();
  DiagnosticEngine Diags;
  auto Prog = bp::parseProgram(Src, Diags);
  ASSERT_TRUE(Prog != nullptr) << Diags.str();
  bp::ProgramCfg Cfg = bp::buildCfg(*Prog);
  unsigned ErrProc = 0, ErrPc = 0;
  ASSERT_TRUE(Cfg.findLabelPc("ERR", ErrProc, ErrPc));

  for (const char *Name : {"summary", "ef", "ef-split", "ef-opt"}) {
    SolverOptions Opts;
    Opts.Engine = Name;
    // A mix of label and point targets through one session.
    std::vector<Query> Queries = {
        Query::fromSource("").target("SAFE"),
        Query::fromSource("").targetPoint(ErrProc, ErrPc),
        Query::fromSource("").targetPoint(0, 0),
        Query::fromSource("").target("ERR"),
    };
    std::unique_ptr<SolverSession> S =
        Solver::open(Query::fromSource(Src), Opts);
    ASSERT_TRUE(S->ok()) << S->error();
    for (const Query &Q : Queries) {
      Query FreshQ = Q;
      FreshQ.Source = Src;
      SolveResult Fresh = Solver::solve(FreshQ, Opts);
      SolveResult Sess = S->solve(Q);
      expectSameCore(Fresh, Sess, std::string(Name) + " point/label mix");
    }
  }
}

//===----------------------------------------------------------------------===//
// Witnesses
//===----------------------------------------------------------------------===//

TEST(SessionTest, WitnessQueriesMatchFreshInEveryOrder) {
  // Witness extraction replays the recorded rings; a session must return
  // the identical trace whether the witness query comes first, last, or
  // between plain queries — and repeated witness queries must extract
  // from the one recorded solve.
  std::string Src = seqFixture();
  DiagnosticEngine Diags;
  auto Prog = bp::parseProgram(Src, Diags);
  ASSERT_TRUE(Prog != nullptr) << Diags.str();
  bp::ProgramCfg Cfg = bp::buildCfg(*Prog);
  unsigned ErrProc = 0, ErrPc = 0;
  ASSERT_TRUE(Cfg.findLabelPc("ERR", ErrProc, ErrPc));

  for (const api::Engine *E : Solver::engines()) {
    if (!E->supportsWitness() || E->handlesConcurrent())
      continue;
    SolverOptions Opts;
    Opts.Engine = E->name();
    std::vector<Query> Queries = {
        Query::fromSource("").target("ERR").witness(),
        Query::fromSource("").target("SAFE"),
        Query::fromSource("").target("SAFE").witness(),
        Query::fromSource("").target("ERR"),
        Query::fromSource("").target("ERR").witness(),
    };
    std::vector<SolveResult> Fresh;
    for (const Query &Q : Queries) {
      Query FreshQ = Q;
      FreshQ.Source = Src;
      Fresh.push_back(Solver::solve(FreshQ, Opts));
    }
    for (const std::vector<size_t> &Perm :
         {std::vector<size_t>{0, 1, 2, 3, 4},
          std::vector<size_t>{4, 3, 2, 1, 0},
          std::vector<size_t>{1, 3, 0, 4, 2}}) {
      std::unique_ptr<SolverSession> S =
          Solver::open(Query::fromSource(Src), Opts);
      ASSERT_TRUE(S->ok()) << S->error();
      for (size_t I : Perm)
        expectSameCore(Fresh[I], S->solve(Queries[I]),
                       std::string(E->name()) + " witness order");
    }
    // The session trace is verified against the explicit semantics, like
    // the fresh one.
    std::unique_ptr<SolverSession> S =
        Solver::open(Query::fromSource(Src), Opts);
    SolveResult W = S->solve(Queries[0]);
    ASSERT_TRUE(W.HasWitness) << E->name();
    std::string Error;
    EXPECT_TRUE(reach::verifyWitness(Cfg, W.Witness, ErrProc, ErrPc, &Error))
        << E->name() << ": " << Error;
  }
}

//===----------------------------------------------------------------------===//
// Randomized programs
//===----------------------------------------------------------------------===//

TEST(SessionTest, RandomizedWorkloadsMatchFresh) {
  // Generator programs with known ground truth: the designated target
  // label plus a pair of point targets, via session and fresh, across the
  // session-capable sequential engines and both strategies.
  for (uint64_t Seed : {2u, 5u}) {
    for (bool Reachable : {true, false}) {
      gen::DriverParams P;
      P.NumProcs = 8;
      P.StmtsPerProc = 8;
      P.Reachable = Reachable;
      P.Seed = Seed;
      gen::Workload W = gen::driverProgram(P);

      for (const char *Name : {"ef-split", "ef-opt", "summary"}) {
        for (fpc::EvalStrategy Strategy :
             {fpc::EvalStrategy::SemiNaive, fpc::EvalStrategy::Naive}) {
          SolverOptions Opts;
          Opts.Engine = Name;
          Opts.Strategy = Strategy;
          std::vector<Query> Queries = {
              Query::fromSource("").target(W.TargetLabel),
              Query::fromSource("").targetPoint(0, 1),
              Query::fromSource("").targetPoint(1, 0),
              Query::fromSource("").target(W.TargetLabel),
          };
          std::unique_ptr<SolverSession> S =
              Solver::open(Query::fromSource(W.Source), Opts);
          ASSERT_TRUE(S->ok()) << S->error();
          for (const Query &Q : Queries) {
            Query FreshQ = Q;
            FreshQ.Source = W.Source;
            SolveResult Fresh = Solver::solve(FreshQ, Opts);
            SolveResult Sess = S->solve(Q);
            expectSameCore(Fresh, Sess,
                           W.Name + " " + Name + " " +
                               fpc::strategyName(Strategy));
            if (!Q.UsePoint && Q.Label == W.TargetLabel && W.ExpectKnown)
              EXPECT_EQ(Sess.Reachable, W.ExpectReachable) << W.Name;
          }
        }
      }
    }
  }
}

TEST(SessionTest, ConcurrentRandomizedTargetsMatchFresh) {
  // The bluetooth model through the conc engine: the ERR label plus point
  // targets across threads, in two orders.
  std::string Src = gen::bluetoothModel(1, 1);
  SolverOptions Opts;
  Opts.Engine = "conc";
  Opts.ContextBound = 3;
  std::vector<Query> Queries = {
      Query::fromSource("").target("ERR"),
      Query::fromSource("").targetPoint(0, 1, 0),
      Query::fromSource("").targetPoint(0, 0, 1),
  };
  std::vector<SolveResult> Fresh;
  for (const Query &Q : Queries) {
    Query FreshQ = Q;
    FreshQ.Source = Src;
    Fresh.push_back(Solver::solve(FreshQ, Opts));
  }
  for (const std::vector<size_t> &Perm : permutationsOf(Queries.size())) {
    std::unique_ptr<SolverSession> S =
        Solver::open(Query::fromSource(Src), Opts);
    ASSERT_TRUE(S->ok()) << S->error();
    for (size_t I : Perm)
      expectSameCore(Fresh[I], S->solve(Queries[I]), "conc bluetooth");
  }
}

//===----------------------------------------------------------------------===//
// Interleaved sessions (the PR-2 stale-memo / clobbered-context guard)
//===----------------------------------------------------------------------===//

TEST(SessionTest, InterleavedSessionsOverDifferentPrograms) {
  // Two live sessions over different programs, queries alternating
  // between them: state must never bleed across sessions.
  gen::DriverParams P;
  P.NumProcs = 8;
  P.StmtsPerProc = 8;
  P.Reachable = true;
  P.Seed = 3;
  gen::Workload WA = gen::driverProgram(P);
  gen::TerminatorParams T;
  T.CounterBits = 4;
  T.NumDeadVars = 2;
  T.Reachable = false;
  gen::Workload WB = gen::terminatorProgram(T);

  SolverOptions Opts;
  Opts.Engine = "ef-split";

  std::vector<std::string> TargetsA = {WA.TargetLabel, "NO_SUCH",
                                       WA.TargetLabel};
  std::vector<std::string> TargetsB = {WB.TargetLabel, WB.TargetLabel,
                                       "NO_SUCH"};

  std::unique_ptr<SolverSession> SA =
      Solver::open(Query::fromSource(WA.Source), Opts);
  std::unique_ptr<SolverSession> SB =
      Solver::open(Query::fromSource(WB.Source), Opts);
  ASSERT_TRUE(SA->ok() && SB->ok());

  for (size_t I = 0; I < TargetsA.size(); ++I) {
    SolveResult FreshA = Solver::solve(
        Query::fromSource(WA.Source).target(TargetsA[I]), Opts);
    SolveResult SessA = SA->solve(Query::fromSource("").target(TargetsA[I]));
    expectSameCore(FreshA, SessA, "interleaved A query " + TargetsA[I]);

    SolveResult FreshB = Solver::solve(
        Query::fromSource(WB.Source).target(TargetsB[I]), Opts);
    SolveResult SessB = SB->solve(Query::fromSource("").target(TargetsB[I]));
    expectSameCore(FreshB, SessB, "interleaved B query " + TargetsB[I]);
  }
}

//===----------------------------------------------------------------------===//
// Mid-session computed-cache clears
//===----------------------------------------------------------------------===//

TEST(SessionTest, SessionSurvivesComputedCacheClears) {
  // clearComputedCache is a pure performance valve: a session that sheds
  // its computed cache between (and before) queries must stay
  // bit-identical to fresh solves, for both the sequential and the
  // concurrent engines and for witness extraction.
  struct Case {
    const char *Engine;
    std::string Src;
  } Cases[] = {
      {"ef-split", seqFixture()},
      {"ef-opt", seqFixture()},
      {"conc", concFixture()},
  };
  for (const Case &C : Cases) {
    SolverOptions Opts;
    Opts.Engine = C.Engine;
    std::vector<std::string> Labels = {"ERR", "SAFE", "ERR", "SAFE"};
    std::unique_ptr<SolverSession> S =
        Solver::open(Query::fromSource(C.Src), Opts);
    ASSERT_TRUE(S->ok()) << S->error();
    S->clearComputedCache(); // Before any query: must be harmless.
    for (const std::string &L : Labels) {
      SolveResult Fresh =
          Solver::solve(Query::fromSource(C.Src).target(L), Opts);
      SolveResult Sess = S->solve(Query::fromSource("").target(L));
      expectSameCore(Fresh, Sess,
                     std::string(C.Engine) + " cache-clear " + L);
      S->clearComputedCache(); // Between every pair of queries.
    }
  }

  // Witness extraction across a clear: the recorded rings must still
  // reconstruct the identical trace.
  SolverOptions Opts;
  Opts.Engine = "ef";
  SolveResult Fresh = Solver::solve(
      Query::fromSource(seqFixture()).target("ERR").witness(), Opts);
  std::unique_ptr<SolverSession> S =
      Solver::open(Query::fromSource(seqFixture()), Opts);
  SolveResult First =
      S->solve(Query::fromSource("").target("ERR").witness());
  S->clearComputedCache();
  SolveResult Second =
      S->solve(Query::fromSource("").target("ERR").witness());
  expectSameCore(Fresh, First, "witness before clear");
  expectSameCore(Fresh, Second, "witness after clear");
}

//===----------------------------------------------------------------------===//
// solveAll: batching, ordering, dedup
//===----------------------------------------------------------------------===//

TEST(SessionTest, SolveAllMatchesIndividualSolves) {
  std::string Src = seqFixture();
  SolverOptions Opts;
  Opts.Engine = "ef-split";

  // Duplicates and both verdicts, deliberately ordered hardest-first.
  std::vector<std::string> Labels = {"SAFE", "ERR", "SAFE", "ERR", "ERR"};
  std::vector<Query> Queries;
  for (const std::string &L : Labels)
    Queries.push_back(Query::fromSource("").target(L));

  std::vector<SolveResult> Fresh;
  for (const std::string &L : Labels)
    Fresh.push_back(Solver::solve(Query::fromSource(Src).target(L), Opts));

  std::unique_ptr<SolverSession> S =
      Solver::open(Query::fromSource(Src), Opts);
  ASSERT_TRUE(S->ok()) << S->error();
  std::vector<SolveResult> Batch = S->solveAll(Queries);
  ASSERT_EQ(Batch.size(), Queries.size());
  for (size_t I = 0; I < Batch.size(); ++I)
    expectSameCore(Fresh[I], Batch[I],
                   "solveAll index " + std::to_string(I));

  const SolverSession::SessionStats &SS = S->stats();
  EXPECT_EQ(SS.Queries, Labels.size());
  // Three duplicates collapse onto two distinct targets.
  EXPECT_EQ(SS.DedupHits, 3u);
  EXPECT_EQ(SS.SessionSolves, 2u);
  EXPECT_EQ(SS.FreshSolves, 0u);
}

TEST(SessionTest, SolveAllServesStateAnswerableTargetsFirst) {
  // Prime the session by solving the unreachable target (saturating the
  // summary); everything in a later batch is then answerable from state
  // and must report zero recomputed rounds.
  std::string Src = seqFixture();
  SolverOptions Opts;
  Opts.Engine = "ef-split";
  std::unique_ptr<SolverSession> S =
      Solver::open(Query::fromSource(Src), Opts);
  SolveResult Prime = S->solve(Query::fromSource("").target("SAFE"));
  EXPECT_FALSE(Prime.Reachable);
  EXPECT_GT(Prime.SummariesRecomputed, 0u);

  std::vector<Query> Batch = {
      Query::fromSource("").target("ERR"),
      Query::fromSource("").target("SAFE"),
  };
  for (const SolveResult &R : S->solveAll(Batch)) {
    EXPECT_TRUE(R.ok());
    EXPECT_EQ(R.SummariesRecomputed, 0u);
    EXPECT_GT(R.SummariesReused, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Reuse accounting and the no-reuse baseline
//===----------------------------------------------------------------------===//

TEST(SessionTest, ReuseCountersReportReplayedRounds) {
  std::string Src = seqFixture();
  SolverOptions Opts;
  Opts.Engine = "ef-split";
  std::unique_ptr<SolverSession> S =
      Solver::open(Query::fromSource(Src), Opts);
  // First query pays every round...
  SolveResult First = S->solve(Query::fromSource("").target("SAFE"));
  EXPECT_EQ(First.SummariesReused, 0u);
  EXPECT_EQ(First.SummariesRecomputed, First.Iterations);
  // ...the repeat replays them all.
  SolveResult Again = S->solve(Query::fromSource("").target("SAFE"));
  EXPECT_EQ(Again.SummariesReused, Again.Iterations);
  EXPECT_EQ(Again.SummariesRecomputed, 0u);
  EXPECT_EQ(First.Iterations, Again.Iterations);

  const SolverSession::SessionStats &SS = S->stats();
  EXPECT_EQ(SS.Queries, 2u);
  EXPECT_GT(SS.SummariesReused, 0u);
}

TEST(SessionTest, NoReuseBaselineStaysIdentical) {
  // SessionReuse off: the session API answers through fresh solves; the
  // results must (trivially) match, and nothing must be served from state.
  std::string Src = seqFixture();
  SolverOptions Opts;
  Opts.Engine = "ef-split";
  Opts.SessionReuse = false;
  std::unique_ptr<SolverSession> S =
      Solver::open(Query::fromSource(Src), Opts);
  for (const std::string &L : {std::string("ERR"), std::string("SAFE")}) {
    SolveResult Fresh =
        Solver::solve(Query::fromSource(Src).target(L), Opts);
    SolveResult Sess = S->solve(Query::fromSource("").target(L));
    expectSameCore(Fresh, Sess, "no-reuse " + L);
  }
  EXPECT_EQ(S->stats().SessionSolves, 0u);
  EXPECT_EQ(S->stats().FreshSolves, 2u);
}

//===----------------------------------------------------------------------===//
// Option variants: iteration caps, no early stop, strategies
//===----------------------------------------------------------------------===//

TEST(SessionTest, IterationCapAndFullFixpointVariantsMatchFresh) {
  std::string Src = seqFixture();
  for (const char *Name : {"ef-split", "ef-opt"}) {
    for (bool EarlyStop : {true, false}) {
      for (uint64_t MaxIter : {uint64_t(0), uint64_t(1), uint64_t(3)}) {
        SolverOptions Opts;
        Opts.Engine = Name;
        Opts.EarlyStop = EarlyStop;
        Opts.MaxIterations = MaxIter;
        std::unique_ptr<SolverSession> S =
            Solver::open(Query::fromSource(Src), Opts);
        ASSERT_TRUE(S->ok()) << S->error();
        for (const std::string &L :
             {std::string("ERR"), std::string("SAFE"), std::string("ERR")}) {
          SolveResult Fresh =
              Solver::solve(Query::fromSource(Src).target(L), Opts);
          SolveResult Sess = S->solve(Query::fromSource("").target(L));
          expectSameCore(Fresh, Sess,
                         std::string(Name) + " early=" +
                             std::to_string(EarlyStop) + " cap=" +
                             std::to_string(MaxIter) + " " + L);
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Frontier-cofactor A/B (off / constrain / restrict)
//===----------------------------------------------------------------------===//

TEST(SessionTest, CofactorModesAgreeOnVerdictsAndRounds) {
  // The restrict-vs-constrain A/B differential: all three settings must
  // agree on verdicts, rounds, and summary sizes — fresh and in session
  // mode — on the fixture and on generator programs.
  gen::TerminatorParams T;
  T.CounterBits = 4;
  T.NumDeadVars = 2;
  T.Reachable = false;
  gen::Workload Term = gen::terminatorProgram(T);

  struct Case {
    const char *Engine;
    std::string Src;
    std::string Label;
  } Cases[] = {
      {"ef-split", seqFixture(), "ERR"},
      {"ef-split", Term.Source, Term.TargetLabel},
      {"conc", concFixture(), "ERR"},
  };
  for (const Case &C : Cases) {
    SolverOptions Opts;
    Opts.Engine = C.Engine;
    Opts.FrontierCofactor = fpc::CofactorMode::Off;
    // A small cache forces narrow rounds, where the cofactor applies.
    Opts.CacheBits = 8;
    SolveResult Off =
        Solver::solve(Query::fromSource(C.Src).target(C.Label), Opts);
    ASSERT_TRUE(Off.ok()) << Off.Error;
    for (fpc::CofactorMode Mode :
         {fpc::CofactorMode::Constrain, fpc::CofactorMode::Restrict}) {
      Opts.FrontierCofactor = Mode;
      SolveResult Fresh =
          Solver::solve(Query::fromSource(C.Src).target(C.Label), Opts);
      expectSameCore(Off, Fresh,
                     std::string(C.Engine) + " fresh cofactor " +
                         fpc::cofactorModeName(Mode));
      std::unique_ptr<SolverSession> S =
          Solver::open(Query::fromSource(C.Src), Opts);
      SolveResult Sess = S->solve(Query::fromSource("").target(C.Label));
      expectSameCore(Off, Sess,
                     std::string(C.Engine) + " session cofactor " +
                         fpc::cofactorModeName(Mode));
    }
  }
}

//===----------------------------------------------------------------------===//
// Error paths
//===----------------------------------------------------------------------===//

TEST(SessionTest, ErrorPathsBehaveLikeTheFacade) {
  // Unknown label through a session.
  std::unique_ptr<SolverSession> S =
      Solver::open(Query::fromSource(seqFixture()), SolverOptions());
  ASSERT_TRUE(S->ok());
  SolveResult R = S->solve(Query::fromSource("").target("NOPE"));
  EXPECT_EQ(R.Status, api::SolveStatus::TargetNotFound);
  EXPECT_NE(R.Error.find("NOPE"), std::string::npos);
  // A later good query still works (the failed one left no bad state).
  EXPECT_TRUE(S->solve(Query::fromSource("").target("ERR")).Reachable);

  // Parse errors are reported at open and from every solve.
  std::unique_ptr<SolverSession> Bad =
      Solver::open(Query::fromSource("main() begin oops"), SolverOptions());
  EXPECT_FALSE(Bad->ok());
  EXPECT_EQ(Bad->status(), api::SolveStatus::ParseError);
  EXPECT_EQ(Bad->solve(Query::fromSource("").target("ERR")).Status,
            api::SolveStatus::ParseError);

  // Unknown engines fail at open.
  SolverOptions Opts;
  Opts.Engine = "mucke-classic";
  std::unique_ptr<SolverSession> Unknown =
      Solver::open(Query::fromSource(seqFixture()), Opts);
  EXPECT_FALSE(Unknown->ok());
  EXPECT_EQ(Unknown->status(), api::SolveStatus::UnknownEngine);

  // Engine/program kind mismatches fail at open.
  Opts.Engine = "conc";
  std::unique_ptr<SolverSession> Mismatch =
      Solver::open(Query::fromSource(seqFixture()), Opts);
  EXPECT_FALSE(Mismatch->ok());
  EXPECT_EQ(Mismatch->status(), api::SolveStatus::BadQuery);
}

//===----------------------------------------------------------------------===//
// Ring diet: delta-compressed round retention (keyframe intervals)
//===----------------------------------------------------------------------===//

TEST(SessionTest, KeyframeIntervalsAreBitIdenticalForEveryEngine) {
  // The ring diet is a pure memory knob: K=1 stores every round full (the
  // pre-diet baseline), K=4 exercises mid-chain reconstitution, K=0 keeps
  // only the first round full (maximal compression). Every engine, both
  // strategies, mixed plain/witness streams in several orders must be
  // bit-identical across all three settings.
  for (const api::Engine *E : Solver::engines()) {
    std::string Src = E->handlesConcurrent() ? concFixture() : seqFixture();
    bool Witness = E->supportsWitness() && !E->handlesConcurrent();
    std::vector<Query> Queries = {
        Query::fromSource("").target("ERR"),
        Query::fromSource("").target("SAFE"),
        Query::fromSource("").target("ERR"),
    };
    if (Witness) {
      Queries.push_back(Query::fromSource("").target("ERR").witness());
      Queries.push_back(Query::fromSource("").target("SAFE").witness());
    }
    // Forward, reverse, and a rotation (witness-first when present).
    std::vector<std::vector<size_t>> Orders;
    std::vector<size_t> Fwd(Queries.size());
    for (size_t I = 0; I < Fwd.size(); ++I)
      Fwd[I] = I;
    Orders.push_back(Fwd);
    std::vector<size_t> Rev(Fwd.rbegin(), Fwd.rend());
    Orders.push_back(Rev);
    std::vector<size_t> Rot(Fwd.begin() + Fwd.size() / 2, Fwd.end());
    Rot.insert(Rot.end(), Fwd.begin(), Fwd.begin() + Fwd.size() / 2);
    Orders.push_back(Rot);

    for (fpc::EvalStrategy Strategy :
         {fpc::EvalStrategy::SemiNaive, fpc::EvalStrategy::Naive}) {
      for (const std::vector<size_t> &Order : Orders) {
        std::vector<SolveResult> Baseline(Queries.size());
        for (uint64_t K : {uint64_t(1), uint64_t(4), uint64_t(0)}) {
          SolverOptions Opts;
          Opts.Engine = E->name();
          Opts.Strategy = Strategy;
          Opts.RingKeyframeInterval = K;
          std::unique_ptr<SolverSession> S =
              Solver::open(Query::fromSource(Src), Opts);
          ASSERT_TRUE(S->ok()) << E->name() << ": " << S->error();
          for (size_t I : Order) {
            SolveResult R = S->solve(Queries[I]);
            if (K == 1)
              Baseline[I] = R;
            else
              expectSameCore(Baseline[I], R,
                             std::string(E->name()) + " K=" +
                                 std::to_string(K) + " query " +
                                 std::to_string(I));
          }
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// One solve per session: witness and plain queries share the EF fixpoint
//===----------------------------------------------------------------------===//

TEST(SessionTest, EfWitnessAndPlainQueriesShareOneSolve) {
  std::string Src = seqFixture();
  DiagnosticEngine Diags;
  auto Prog = bp::parseProgram(Src, Diags);
  ASSERT_TRUE(Prog != nullptr) << Diags.str();
  bp::ProgramCfg Cfg = bp::buildCfg(*Prog);
  unsigned ErrProc = 0, ErrPc = 0;
  ASSERT_TRUE(Cfg.findLabelPc("ERR", ErrProc, ErrPc));
  unsigned SafeProc = 0, SafePc = 0;
  ASSERT_TRUE(Cfg.findLabelPc("SAFE", SafeProc, SafePc));

  for (reach::SeqAlgorithm Alg : {reach::SeqAlgorithm::EntryForward,
                                  reach::SeqAlgorithm::EntryForwardSplit}) {
    reach::SeqOptions Opts;
    Opts.Alg = Alg;
    // The borrowed-witness architecture under test is specific to the
    // monolithic compilation: the extractor walks the very relation the
    // plain queries solve. (Split sessions keep an owned sub-session.)
    Opts.MonolithicSummary = true;
    // One solve's worth of rounds, from the pre-existing one-shot path.
    reach::WitnessResult FreshW =
        reach::checkReachabilityWithWitness(Cfg, ErrProc, ErrPc, Opts);
    ASSERT_TRUE(FreshW.Reachable);
    uint64_t OneSolveRounds = FreshW.Relations.at("SummaryEF").Iterations;

    // Witness-first: the extractor completes the session's own fixpoint
    // in place, so plain queries of any target are then answerable from
    // state and replay without computing a single new round.
    reach::SeqSession S(Cfg, Opts);
    reach::WitnessResult W = S.solveWithWitness(ErrProc, ErrPc);
    ASSERT_TRUE(W.Reachable);
    EXPECT_EQ(W.Steps.size(), FreshW.Steps.size());
    EXPECT_EQ(W.Relations.at("SummaryEF").Iterations, OneSolveRounds);
    EXPECT_TRUE(S.answersFromState(SafeProc, SafePc));
    reach::SeqResult P = S.solve(SafeProc, SafePc);
    EXPECT_FALSE(P.Reachable);
    EXPECT_EQ(P.SummariesRecomputed, 0u);
    EXPECT_EQ(P.SummariesReused, P.Iterations);

    // Plain-first: the early-stopped prefix is *resumed* by the witness
    // query, never redone — the shared evaluator's cumulative round count
    // stays exactly one solve's worth.
    reach::SeqSession S2(Cfg, Opts);
    reach::SeqResult P1 = S2.solve(ErrProc, ErrPc);
    EXPECT_TRUE(P1.Reachable);
    reach::WitnessResult W2 = S2.solveWithWitness(ErrProc, ErrPc);
    ASSERT_TRUE(W2.Reachable);
    EXPECT_EQ(W2.Steps.size(), FreshW.Steps.size());
    EXPECT_EQ(W2.Relations.at("SummaryEF").Iterations, OneSolveRounds);
    std::string Error;
    EXPECT_TRUE(
        reach::verifyWitness(Cfg, W2.Steps, ErrProc, ErrPc, &Error))
        << Error;
  }
}

//===----------------------------------------------------------------------===//
// The diet measurably shrinks long-lived sessions
//===----------------------------------------------------------------------===//

TEST(SessionTest, RingDietShrinksLongLivedSessionMemory) {
  // Two long-lived sessions solving the identical sweep, one at the
  // pre-diet K=1 full-ring baseline and one at the default keyframe
  // interval: every result bit-identical, resident nodes strictly lower,
  // peak no higher.
  auto sweep = [](const std::string &Src, const char *Engine,
                  unsigned ContextBound, const std::vector<Query> &Queries,
                  const std::string &Tag) {
    SolverOptions Base;
    Base.Engine = Engine;
    Base.ContextBound = ContextBound;
    Base.RingKeyframeInterval = 1;
    SolverOptions Diet = Base;
    Diet.RingKeyframeInterval = SolverOptions().RingKeyframeInterval;
    std::unique_ptr<SolverSession> SBase =
        Solver::open(Query::fromSource(Src), Base);
    std::unique_ptr<SolverSession> SDiet =
        Solver::open(Query::fromSource(Src), Diet);
    ASSERT_TRUE(SBase->ok() && SDiet->ok())
        << Tag << ": " << SBase->error() << SDiet->error();
    for (size_t I = 0; I < Queries.size(); ++I) {
      SolveResult RB = SBase->solve(Queries[I]);
      SolveResult RD = SDiet->solve(Queries[I]);
      ASSERT_TRUE(RB.ok()) << Tag << " query " << I << ": " << RB.Error;
      expectSameCore(RB, RD, Tag + " query " + std::to_string(I));
    }
    EXPECT_LT(SDiet->liveNodes(), SBase->liveNodes()) << Tag;
    EXPECT_LE(SDiet->peakLiveNodes(), SBase->peakLiveNodes()) << Tag;
  };

  // Long bluetooth sweep through the conc engine.
  sweep(gen::bluetoothModel(2, 1), "conc", 3,
        {Query::fromSource("").target("ERR"),
         Query::fromSource("").targetPoint(0, 1, 0),
         Query::fromSource("").targetPoint(0, 0, 1),
         Query::fromSource("").targetPoint(1, 0, 1),
         Query::fromSource("").targetPoint(0, 0, 0)},
        "conc bluetooth");

  // Witness-heavy ef sweep, measured against the *seed architecture*: a
  // plain full-ring session plus a separate full-ring witness solver on
  // its own manager — which is what every ef session used to pay the
  // moment a witness query arrived (a second EntryForward solve, a
  // second copy of every round). The shared-state diet session serves
  // the identical mixed stream from one solve on one manager and must
  // retain strictly less than the pair, at matching results.
  gen::DriverParams P;
  P.NumProcs = 8;
  P.StmtsPerProc = 8;
  P.Reachable = true;
  P.Seed = 11;
  gen::Workload W = gen::driverProgram(P);
  DiagnosticEngine Diags;
  auto Prog = bp::parseProgram(W.Source, Diags);
  ASSERT_TRUE(Prog != nullptr) << Diags.str();
  bp::ProgramCfg Cfg = bp::buildCfg(*Prog);
  unsigned ErrProc = 0, ErrPc = 0;
  ASSERT_TRUE(Cfg.findLabelPc(W.TargetLabel, ErrProc, ErrPc));

  reach::SeqOptions Seed;
  Seed.Alg = reach::SeqAlgorithm::EntryForward;
  // The shared-solve diet being measured is the monolithic borrowed-
  // witness architecture; the per-procedure split always pays an owned
  // witness sub-session, so it is not the subject of this comparison.
  Seed.MonolithicSummary = true;
  Seed.RingKeyframeInterval = 1; // Pre-diet retention: every round full.
  reach::SeqSession SeedPlain(Cfg, Seed);
  reach::WitnessSession SeedWitness(Cfg, Seed); // The duplicate solver.

  reach::SeqOptions Diet;
  Diet.Alg = reach::SeqAlgorithm::EntryForward;
  Diet.MonolithicSummary = true;
  reach::SeqSession SDiet(Cfg, Diet);

  const std::pair<unsigned, unsigned> Targets[] = {
      {ErrProc, ErrPc}, {0, 1}, {1, 0}, {2, 0}};
  for (auto [TP, TPc] : Targets) {
    reach::WitnessResult WSeed = SeedWitness.query(TP, TPc);
    reach::WitnessResult WDiet = SDiet.solveWithWitness(TP, TPc);
    EXPECT_EQ(WSeed.Reachable, WDiet.Reachable) << TP << ":" << TPc;
    EXPECT_EQ(WSeed.Steps.size(), WDiet.Steps.size()) << TP << ":" << TPc;
    reach::SeqResult PSeed = SeedPlain.solve(TP, TPc);
    reach::SeqResult PDiet = SDiet.solve(TP, TPc);
    EXPECT_EQ(PSeed.Reachable, PDiet.Reachable) << TP << ":" << TPc;
    EXPECT_EQ(WSeed.Reachable, PSeed.Reachable) << TP << ":" << TPc;
  }

  size_t SeedLive = SeedPlain.liveNodes() + SeedWitness.liveNodes();
  size_t SeedPeak = SeedPlain.peakLiveNodes() + SeedWitness.peakLiveNodes();
  EXPECT_LT(SDiet.liveNodes(), SeedLive) << "ef witness sweep";
  EXPECT_LT(SDiet.peakLiveNodes(), SeedPeak) << "ef witness sweep";
}
