//===- Encode.cpp - Symbolic encoding of Boolean programs -----------------===//

#include "symbolic/Encode.h"

#include <algorithm>

using namespace getafix;
using namespace getafix::sym;
using namespace getafix::bp;
using namespace getafix::fpc;

//===----------------------------------------------------------------------===//
// Choice-bit accounting
//===----------------------------------------------------------------------===//

unsigned ProgramEncoder::maxChoiceBits(const ProgramCfg &Cfg) {
  unsigned Max = 0;
  struct Walk {
    static unsigned go(const Expr &E) {
      unsigned N = E.Kind == ExprKind::Nondet ? 1 : 0;
      if (E.Lhs)
        N += go(*E.Lhs);
      if (E.Rhs)
        N += go(*E.Rhs);
      return N;
    }
  };
  auto Count = [](const Expr &E) { return Walk::go(E); };
  for (const ProcCfg &P : Cfg.Procs) {
    for (const CfgEdge &E : P.Edges) {
      unsigned N = 0;
      if (E.Cond)
        N += Count(*E.Cond);
      for (const Expr *R : E.Rhs)
        N += Count(*R);
      Max = std::max(Max, N);
    }
    for (const CfgExit &X : P.Exits) {
      unsigned N = 0;
      for (const Expr *R : X.ReturnExprs)
        N += Count(*R);
      Max = std::max(Max, N);
    }
  }
  return std::max(Max, 1u);
}

//===----------------------------------------------------------------------===//
// Construction: domains, variables, relation declarations
//===----------------------------------------------------------------------===//

ProgramEncoder::ProgramEncoder(System &Sys, VarFactory &Factory,
                               const StateDomains &Doms,
                               const ProgramCfg &Cfg, DomainId ChoiceDom,
                               std::string Suffix)
    : Sys(Sys), Doms(Doms), Cfg(Cfg) {
  Choice = Factory.makeVar("_ch" + Suffix, ChoiceDom);

  auto Mk = [&](const char *Base, DomainId Dom) {
    return Factory.makeVar(std::string("_") + Base + Suffix, Dom);
  };

  F.IMod = Mk("iMod", Doms.Mod);
  F.IPcFrom = Mk("iPcF", Doms.Pc);
  F.IPcTo = Mk("iPcT", Doms.Pc);
  F.ILFrom = Mk("iLF", Doms.LVec);
  F.ILTo = Mk("iLT", Doms.LVec);
  F.IGFrom = Mk("iGF", Doms.GVec);
  F.IGTo = Mk("iGT", Doms.GVec);
  ProgramInt = Sys.declareRel(
      "programInt" + Suffix,
      {F.IMod, F.IPcFrom, F.IPcTo, F.ILFrom, F.ILTo, F.IGFrom, F.IGTo});

  F.CModCaller = Mk("cModR", Doms.Mod);
  F.CModCallee = Mk("cModE", Doms.Mod);
  F.CPc = Mk("cPc", Doms.Pc);
  F.CLCaller = Mk("cLR", Doms.LVec);
  F.CLEntry = Mk("cLE", Doms.LVec);
  F.CG = Mk("cG", Doms.GVec);
  ProgramCall = Sys.declareRel(
      "programCall" + Suffix,
      {F.CModCaller, F.CModCallee, F.CPc, F.CLCaller, F.CLEntry, F.CG});

  F.SMod = Mk("sMod", Doms.Mod);
  F.SPcCall = Mk("sPcC", Doms.Pc);
  F.SPcRet = Mk("sPcR", Doms.Pc);
  SkipCall =
      Sys.declareRel("skipCall" + Suffix, {F.SMod, F.SPcCall, F.SPcRet});

  F.R1Mod = Mk("r1Mod", Doms.Mod);
  F.R1ModCallee = Mk("r1ModE", Doms.Mod);
  F.R1Pc = Mk("r1Pc", Doms.Pc);
  F.R1LCaller = Mk("r1LC", Doms.LVec);
  F.R1LRet = Mk("r1LR", Doms.LVec);
  SetReturn1 = Sys.declareRel(
      "setReturn1" + Suffix,
      {F.R1Mod, F.R1ModCallee, F.R1Pc, F.R1LCaller, F.R1LRet});

  F.R2Mod = Mk("r2Mod", Doms.Mod);
  F.R2ModCallee = Mk("r2ModE", Doms.Mod);
  F.R2Pc = Mk("r2Pc", Doms.Pc);
  F.R2PcExit = Mk("r2PcX", Doms.Pc);
  F.R2LExit = Mk("r2LX", Doms.LVec);
  F.R2LRet = Mk("r2LR", Doms.LVec);
  F.R2GExit = Mk("r2GX", Doms.GVec);
  F.R2GRet = Mk("r2GR", Doms.GVec);
  SetReturn2 = Sys.declareRel("setReturn2" + Suffix,
                              {F.R2Mod, F.R2ModCallee, F.R2Pc, F.R2PcExit,
                               F.R2LExit, F.R2LRet, F.R2GExit, F.R2GRet});

  F.RMod = Mk("rMod", Doms.Mod);
  F.RModCallee = Mk("rModE", Doms.Mod);
  F.RPc = Mk("rPc", Doms.Pc);
  F.RPcExit = Mk("rPcX", Doms.Pc);
  F.RLCaller = Mk("rLC", Doms.LVec);
  F.RLExit = Mk("rLX", Doms.LVec);
  F.RGExit = Mk("rGX", Doms.GVec);
  F.RLRet = Mk("rLR", Doms.LVec);
  F.RGRet = Mk("rGR", Doms.GVec);
  SetReturn = Sys.declareRel("setReturn" + Suffix,
                             {F.RMod, F.RModCallee, F.RPc, F.RPcExit,
                              F.RLCaller, F.RLExit, F.RGExit, F.RLRet,
                              F.RGRet});

  F.EMod = Mk("eMod", Doms.Mod);
  F.EPc = Mk("ePc", Doms.Pc);
  ExitRel = Sys.declareRel("exit" + Suffix, {F.EMod, F.EPc});

  F.YMod = Mk("yMod", Doms.Mod);
  F.YPc = Mk("yPc", Doms.Pc);
  F.YL = Mk("yL", Doms.LVec);
  EntryRel = Sys.declareRel("entry" + Suffix, {F.YMod, F.YPc, F.YL});

  F.NMod = Mk("nMod", Doms.Mod);
  F.NPc = Mk("nPc", Doms.Pc);
  F.NL = Mk("nL", Doms.LVec);
  InitRel = Sys.declareRel("init" + Suffix, {F.NMod, F.NPc, F.NL});

  F.TMod = Mk("tMod", Doms.Mod);
  F.TPc = Mk("tPc", Doms.Pc);
  Target = Sys.declareRel("target" + Suffix, {F.TMod, F.TPc});
}

//===----------------------------------------------------------------------===//
// Expression compilation
//===----------------------------------------------------------------------===//

Bdd ProgramEncoder::compileExpr(Evaluator &Ev, const Expr &E, VarId LVar,
                                VarId GVar, unsigned &ChoiceIdx) {
  switch (E.Kind) {
  case ExprKind::True:
    return Ev.manager().one();
  case ExprKind::False:
    return Ev.manager().zero();
  case ExprKind::Nondet:
    return Ev.bitVar(Choice, ChoiceIdx++);
  case ExprKind::Var:
    return Ev.bitVar(E.Ref.IsGlobal ? GVar : LVar, E.Ref.Index);
  case ExprKind::Not:
    return !compileExpr(Ev, *E.Lhs, LVar, GVar, ChoiceIdx);
  case ExprKind::And: {
    Bdd L = compileExpr(Ev, *E.Lhs, LVar, GVar, ChoiceIdx);
    Bdd R = compileExpr(Ev, *E.Rhs, LVar, GVar, ChoiceIdx);
    return L & R;
  }
  case ExprKind::Or: {
    Bdd L = compileExpr(Ev, *E.Lhs, LVar, GVar, ChoiceIdx);
    Bdd R = compileExpr(Ev, *E.Rhs, LVar, GVar, ChoiceIdx);
    return L | R;
  }
  }
  assert(false && "unhandled expression kind");
  return Ev.manager().zero();
}

Bdd ProgramEncoder::frameEq(Evaluator &Ev, VarId From, VarId To) {
  return Ev.encodeEqVar(From, To);
}

BddCube ProgramEncoder::choiceCube(Evaluator &Ev) {
  std::vector<unsigned> Bits = Ev.layout().bits(Choice);
  return Ev.manager().makeCube(Bits);
}

//===----------------------------------------------------------------------===//
// Relation binding
//===----------------------------------------------------------------------===//

void ProgramEncoder::bindProgramInt(Evaluator &Ev) {
  BddManager &Mgr = Ev.manager();
  const Program &Prog = *Cfg.Prog;
  unsigned LBits = unsigned(Ev.layout().bits(F.ILFrom).size());
  unsigned GBits = unsigned(Ev.layout().bits(F.IGFrom).size());
  BddCube Choices = choiceCube(Ev);

  Bdd Result = Mgr.zero();
  for (const ProcCfg &P : Cfg.Procs) {
    (void)Prog;
    for (const CfgEdge &E : P.Edges) {
      if (E.K == CfgEdge::Kind::Call)
        continue;
      Bdd Term = Ev.encodeEqConst(F.IMod, P.ProcId) &
                 Ev.encodeEqConst(F.IPcFrom, E.From) &
                 Ev.encodeEqConst(F.IPcTo, E.To);
      unsigned ChoiceIdx = 0;
      if (E.K == CfgEdge::Kind::Assume) {
        if (E.Cond) {
          Bdd Cond = compileExpr(Ev, *E.Cond, F.ILFrom, F.IGFrom, ChoiceIdx);
          Term &= E.NegateCond ? !Cond : Cond;
        }
        Term &= frameEq(Ev, F.ILFrom, F.ILTo);
        Term &= frameEq(Ev, F.IGFrom, F.IGTo);
      } else { // Assign.
        // Compile right-hand sides first (shared running choice index).
        std::vector<Bdd> Values;
        Values.reserve(E.Rhs.size());
        for (const Expr *R : E.Rhs)
          Values.push_back(compileExpr(Ev, *R, F.ILFrom, F.IGFrom,
                                       ChoiceIdx));
        // Per-bit update constraints; untouched bits are framed.
        std::vector<const Bdd *> LocalTarget(LBits, nullptr);
        std::vector<const Bdd *> GlobalTarget(GBits, nullptr);
        for (size_t I = 0; I < E.Lhs.size(); ++I) {
          const VarRef &Ref = E.Lhs[I];
          if (Ref.IsGlobal)
            GlobalTarget[Ref.Index] = &Values[I];
          else
            LocalTarget[Ref.Index] = &Values[I];
        }
        for (unsigned B = LBits; B-- > 0;) {
          Bdd Next = Ev.bitVar(F.ILTo, B);
          Bdd Cur = LocalTarget[B] ? *LocalTarget[B] : Ev.bitVar(F.ILFrom, B);
          Term &= Next.iff(Cur);
        }
        for (unsigned B = GBits; B-- > 0;) {
          Bdd Next = Ev.bitVar(F.IGTo, B);
          Bdd Cur =
              GlobalTarget[B] ? *GlobalTarget[B] : Ev.bitVar(F.IGFrom, B);
          Term &= Next.iff(Cur);
        }
      }
      Result |= Term.exists(Choices);
    }
  }
  Ev.bindInput(ProgramInt, Result);
}

void ProgramEncoder::bindProgramCall(Evaluator &Ev) {
  BddManager &Mgr = Ev.manager();
  const Program &Prog = *Cfg.Prog;
  unsigned LBits = unsigned(Ev.layout().bits(F.CLEntry).size());
  BddCube Choices = choiceCube(Ev);

  Bdd Result = Mgr.zero();
  for (const ProcCfg &P : Cfg.Procs) {
    for (const CfgEdge &E : P.Edges) {
      if (E.K != CfgEdge::Kind::Call)
        continue;
      const Proc &Callee = Prog.proc(E.CalleeId);
      unsigned NumParams = unsigned(Callee.Params.size());
      unsigned NumSlots = Callee.numLocalSlots();

      Bdd Term = Ev.encodeEqConst(F.CModCaller, P.ProcId) &
                 Ev.encodeEqConst(F.CModCallee, E.CalleeId) &
                 Ev.encodeEqConst(F.CPc, E.From);
      unsigned ChoiceIdx = 0;
      std::vector<Bdd> Args;
      Args.reserve(E.Rhs.size());
      for (const Expr *A : E.Rhs)
        Args.push_back(compileExpr(Ev, *A, F.CLCaller, F.CG, ChoiceIdx));
      assert(Args.size() == NumParams && "call arity survived sema");
      for (unsigned B = LBits; B-- > 0;) {
        Bdd EntryBit = Ev.bitVar(F.CLEntry, B);
        if (B < NumParams)
          Term &= EntryBit.iff(Args[B]);
        else if (B >= NumSlots)
          Term &= !EntryBit; // Padding bits stay false inside the callee.
        // Slots in [NumParams, NumSlots): uninitialized, nondet — free.
      }
      Result |= Term.exists(Choices);
    }
  }
  Ev.bindInput(ProgramCall, Result);
}

void ProgramEncoder::bindSkipCall(Evaluator &Ev) {
  Bdd Result = Ev.manager().zero();
  for (const ProcCfg &P : Cfg.Procs)
    for (const CfgEdge &E : P.Edges) {
      if (E.K != CfgEdge::Kind::Call)
        continue;
      Result |= Ev.encodeEqConst(F.SMod, P.ProcId) &
                Ev.encodeEqConst(F.SPcCall, E.From) &
                Ev.encodeEqConst(F.SPcRet, E.To);
    }
  Ev.bindInput(SkipCall, Result);
}

void ProgramEncoder::bindReturns(Evaluator &Ev) {
  BddManager &Mgr = Ev.manager();
  unsigned LBits = unsigned(Ev.layout().bits(F.R1LCaller).size());
  unsigned GBits = unsigned(Ev.layout().bits(F.R2GExit).size());
  BddCube Choices = choiceCube(Ev);

  Bdd Ret1 = Mgr.zero();
  Bdd Ret2 = Mgr.zero();
  Bdd RetFull = Mgr.zero();

  for (const ProcCfg &P : Cfg.Procs) {
    for (const CfgEdge &E : P.Edges) {
      if (E.K != CfgEdge::Kind::Call)
        continue;
      const ProcCfg &CalleeCfg = Cfg.Procs[E.CalleeId];

      // Which local slots / global bits receive returned values.
      std::vector<int> LocalFrom(LBits, -1);  // -> return-value index.
      std::vector<int> GlobalFrom(GBits, -1);
      for (size_t I = 0; I < E.Lhs.size(); ++I) {
        const VarRef &Ref = E.Lhs[I];
        if (Ref.IsGlobal)
          GlobalFrom[Ref.Index] = int(I);
        else
          LocalFrom[Ref.Index] = int(I);
      }

      // --- setReturn1: caller-side local copying (exit-independent).
      {
        Bdd Term = Ev.encodeEqConst(F.R1Mod, P.ProcId) &
                   Ev.encodeEqConst(F.R1ModCallee, E.CalleeId) &
                   Ev.encodeEqConst(F.R1Pc, E.From);
        for (unsigned B = LBits; B-- > 0;)
          if (LocalFrom[B] < 0)
            Term &= Ev.bitVar(F.R1LRet, B).iff(Ev.bitVar(F.R1LCaller, B));
        Ret1 |= Term;
      }

      // --- setReturn2 and the full setReturn: per callee exit.
      for (const CfgExit &X : CalleeCfg.Exits) {
        unsigned ChoiceIdx = 0;
        std::vector<Bdd> Values2;
        for (const Expr *R : X.ReturnExprs)
          Values2.push_back(
              compileExpr(Ev, *R, F.R2LExit, F.R2GExit, ChoiceIdx));

        Bdd Term2 = Ev.encodeEqConst(F.R2Mod, P.ProcId) &
                    Ev.encodeEqConst(F.R2ModCallee, E.CalleeId) &
                    Ev.encodeEqConst(F.R2Pc, E.From) &
                    Ev.encodeEqConst(F.R2PcExit, X.Pc);
        for (unsigned B = LBits; B-- > 0;)
          if (LocalFrom[B] >= 0)
            Term2 &= Ev.bitVar(F.R2LRet, B).iff(Values2[LocalFrom[B]]);
        for (unsigned B = GBits; B-- > 0;) {
          Bdd RetBit = Ev.bitVar(F.R2GRet, B);
          if (GlobalFrom[B] >= 0)
            Term2 &= RetBit.iff(Values2[GlobalFrom[B]]);
          else
            Term2 &= RetBit.iff(Ev.bitVar(F.R2GExit, B));
        }
        Ret2 |= Term2.exists(Choices);

        // Full (unsplit) Return over its own formals.
        ChoiceIdx = 0;
        std::vector<Bdd> Values;
        for (const Expr *R : X.ReturnExprs)
          Values.push_back(
              compileExpr(Ev, *R, F.RLExit, F.RGExit, ChoiceIdx));
        Bdd Term = Ev.encodeEqConst(F.RMod, P.ProcId) &
                   Ev.encodeEqConst(F.RModCallee, E.CalleeId) &
                   Ev.encodeEqConst(F.RPc, E.From) &
                   Ev.encodeEqConst(F.RPcExit, X.Pc);
        for (unsigned B = LBits; B-- > 0;) {
          Bdd RetBit = Ev.bitVar(F.RLRet, B);
          if (LocalFrom[B] >= 0)
            Term &= RetBit.iff(Values[LocalFrom[B]]);
          else
            Term &= RetBit.iff(Ev.bitVar(F.RLCaller, B));
        }
        for (unsigned B = GBits; B-- > 0;) {
          Bdd RetBit = Ev.bitVar(F.RGRet, B);
          if (GlobalFrom[B] >= 0)
            Term &= RetBit.iff(Values[GlobalFrom[B]]);
          else
            Term &= RetBit.iff(Ev.bitVar(F.RGExit, B));
        }
        RetFull |= Term.exists(Choices);
      }
    }
  }

  Ev.bindInput(SetReturn1, Ret1);
  Ev.bindInput(SetReturn2, Ret2);
  Ev.bindInput(SetReturn, RetFull);
}

void ProgramEncoder::bindStatics(Evaluator &Ev, unsigned TargetProcId,
                                 unsigned TargetPc) {
  BddManager &Mgr = Ev.manager();
  const Program &Prog = *Cfg.Prog;

  Bdd Exits = Mgr.zero();
  for (const ProcCfg &P : Cfg.Procs)
    for (const CfgExit &X : P.Exits)
      Exits |= Ev.encodeEqConst(F.EMod, P.ProcId) &
               Ev.encodeEqConst(F.EPc, X.Pc);
  Ev.bindInput(ExitRel, Exits);

  // Entries: PC 0 of every module, with that module's unused local slots
  // (padding) pinned false — the encoding invariant for frame bits.
  {
    unsigned LBits = unsigned(Ev.layout().bits(F.YL).size());
    Bdd Entries = Mgr.zero();
    for (const ProcCfg &P : Cfg.Procs) {
      Bdd Term = Ev.encodeEqConst(F.YMod, P.ProcId) &
                 Ev.encodeEqConst(F.YPc, 0);
      unsigned Slots = Prog.proc(P.ProcId).numLocalSlots();
      for (unsigned B = Slots; B < LBits; ++B)
        Term &= !Ev.bitVar(F.YL, B);
      Entries |= Term;
    }
    Ev.bindInput(EntryRel, Entries);
  }

  // Init constrains only module and PC (Section 4's Init), plus: padding
  // bits of main's frame start false so they stay false everywhere.
  unsigned LBits = unsigned(Ev.layout().bits(F.NL).size());
  unsigned MainSlots = Prog.main().numLocalSlots();
  Bdd Init = Ev.encodeEqConst(F.NMod, Prog.MainId) &
             Ev.encodeEqConst(F.NPc, 0);
  for (unsigned B = MainSlots; B < LBits; ++B)
    Init &= !Ev.bitVar(F.NL, B);
  Ev.bindInput(InitRel, Init);

  Bdd TargetBdd = Mgr.zero();
  if (TargetProcId != ~0u)
    TargetBdd = Ev.encodeEqConst(F.TMod, TargetProcId) &
                Ev.encodeEqConst(F.TPc, TargetPc);
  Ev.bindInput(Target, TargetBdd);
}

void ProgramEncoder::bind(Evaluator &Ev, unsigned TargetProcId,
                          unsigned TargetPc) {
  bindProgramInt(Ev);
  bindProgramCall(Ev);
  bindSkipCall(Ev);
  bindReturns(Ev);
  bindStatics(Ev, TargetProcId, TargetPc);
}
