//===- fixpoint_calculus.cpp - Using the calculus directly ----------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section-3 example, verbatim: model-check a (non-recursive)
/// transition system by writing
///
///   Reach(u) = Init(u) | exists x. (Reach(x) & Trans(x, u))
///
/// in the fixed-point calculus and letting the symbolic solver iterate it.
/// The system here is a 3-bit counter with a stuck transition; we compute
/// which counter values are reachable and print the solved equation system
/// in its MUCKE-like concrete syntax.
///
//===----------------------------------------------------------------------===//

#include "fpcalc/Calculus.h"
#include "fpcalc/Evaluator.h"

#include <cstdio>

using namespace getafix;
using namespace getafix::fpc;

int main() {
  System Sys;
  DomainId Counter = Sys.addDomain("Counter", 8);
  VarId U = Sys.addVar("u", Counter);
  VarId X = Sys.addVar("x", Counter);

  RelId Init = Sys.declareRel("Init", {U});
  RelId Trans = Sys.declareRel("Trans", {X, U});
  RelId Reach = Sys.declareRel("Reach", {U});

  // The one-line model checker (Section 3).
  Sys.define(Reach, Sys.mkOr({Sys.applyVars(Init, {U}),
                              Sys.exists({X}, Sys.mkAnd({
                                                  Sys.applyVars(Reach, {X}),
                                                  Sys.applyVars(Trans,
                                                                {X, U}),
                                              }))}));

  DiagnosticEngine Diags;
  if (!Sys.validate(Diags)) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  std::printf("equation system:\n%s\n", Sys.print().c_str());

  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));

  // Init = {1}; Trans: n -> n+2 mod 8, except 5 is stuck.
  Ev.bindInput(Init, Ev.encodeEqConst(U, 1));
  Bdd TransBdd = Mgr.zero();
  for (uint64_t N = 0; N < 8; ++N) {
    if (N == 5)
      continue;
    TransBdd |= Ev.encodeEqConst(X, N) & Ev.encodeEqConst(U, (N + 2) % 8);
  }
  Ev.bindInput(Trans, TransBdd);

  EvalResult R = Ev.evaluate(Reach);
  std::printf("reachable counter values:");
  for (uint64_t N = 0; N < 8; ++N)
    if (!(R.Value & Ev.encodeEqConst(U, N)).isZero())
      std::printf(" %llu", (unsigned long long)N);
  std::printf("\n(odd values only: 1 -> 3 -> 5, then stuck)\n");
  std::printf("iterations: %llu\n",
              (unsigned long long)Ev.stats().at("Reach").Iterations);
  return 0;
}
