//===- SeqReach.h - Sequential reachability algorithms ----------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's three algorithms for reachability in recursive Boolean
/// programs, each *written as a fixed-point formula* (the paper's central
/// thesis) and solved by the fpcalc evaluator:
///
///   - `SummarySimple`   — Section 4.1: summaries from *all* entries
///     (sound/complete but explores unreachable entries), completed with a
///     reachable-entries fixpoint so arbitrary targets can be queried.
///   - `EntryForward`    — Section 4.2: init-restricted summaries with the
///     entry-discovery clause; only reachable states are ever represented.
///   - `EntryForwardSplit` — Section 4.2's rewrite of the return clause
///     that splits `Return` into ReturnA/ReturnB so the two large summary
///     BDDs are each first conjoined with small relations (the Appendix
///     formula).
///   - `EntryForwardOpt` — Section 4.3: the frontier-restricted algorithm
///     with the `fr` mark bit and the non-monotone `Relevant` relation,
///     closing internal transitions per round (`New1`) and admitting one
///     round of calls/returns (`New2`).
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_REACH_SEQREACH_H
#define GETAFIX_REACH_SEQREACH_H

#include "bdd/Bdd.h"
#include "bp/Cfg.h"
#include "fpcalc/Calculus.h"
#include "support/ResourceGovernor.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace getafix {
namespace reach {

struct WitnessResult; // reach/Witness.h

enum class SeqAlgorithm {
  SummarySimple,
  EntryForward,
  EntryForwardSplit,
  EntryForwardOpt,
};

const char *algorithmName(SeqAlgorithm Alg);

struct SeqOptions {
  SeqAlgorithm Alg = SeqAlgorithm::EntryForwardSplit;
  /// How the fixed-point solver iterates: semi-naive (delta-driven, the
  /// default) or the paper's literal naive semantics. Both produce the
  /// identical per-round value sequence; the knob exists for ablation.
  fpc::EvalStrategy Strategy = fpc::EvalStrategy::SemiNaive;
  /// Stop iterating as soon as the target is found (the Appendix formula's
  /// early-termination disjunct, implemented at the solver level).
  bool EarlyStop = true;
  /// Cap on outer fixpoint rounds of the queried relation; 0 = unlimited.
  uint64_t MaxIterations = 0;
  /// Computed-cache size for the BDD manager (2^CacheBits entries).
  unsigned CacheBits = 18;
  /// Automatic garbage-collection threshold (live nodes); 0 disables.
  size_t GcThreshold = 1u << 22;
  /// Coudert–Madre care-set minimization of relational-product operands
  /// in narrow delta rounds: off, `constrain` (maximal simplification,
  /// the default), or `restrict` (support never grows). Results are
  /// bit-identical under all three; the knob exists for ablation.
  fpc::CofactorMode FrontierCofactor = fpc::CofactorMode::Constrain;
  /// Session mode (`SeqSession`): reuse rounds and summaries solved by
  /// earlier queries. Off = every query re-solves from scratch (ablation /
  /// differential-testing baseline). One-shot solves ignore this.
  bool ReuseSolvedState = true;
  /// Worker threads for the evaluator's parallel SCC scheduling and
  /// intra-SCC disjunct parallelism (1 = sequential). Independent
  /// dependency SCCs of the fixpoint system are solved on a work-stealing
  /// pool over per-worker BDD managers, and heavy semi-naive rounds fan
  /// their distributive disjunct products out over the same pool;
  /// verdicts, rounds, and witnesses are bit-identical at any setting.
  unsigned Threads = 1;
  /// Cost gate of the intra-SCC disjunct parallelism: a semi-naive round
  /// goes parallel only when the previous round allocated at least this
  /// many BDD nodes, so light rounds never pay cross-manager import
  /// overhead. 0 = auto (the evaluator's built-in `cacheSlots()/2`
  /// valve). Purely a performance knob — results are bit-identical.
  uint64_t DisjunctParallelThreshold = 0;
  /// Session / witness ring retention (see fpc::RingLog): recorded rounds
  /// are stored as exact deltas with a full keyframe every this many
  /// rounds, bounding both retained nodes and ring-reconstitution cost.
  /// 1 keeps every round full (the pre-diet baseline); 0 keeps only the
  /// first round full (maximal compression). Purely a memory knob —
  /// verdicts, rounds, and witnesses are bit-identical at any value.
  uint64_t RingKeyframeInterval = 8;
  /// Resource governor for this solve attempt (deadline / node budget /
  /// cancel flag; see support/ResourceGovernor.h). Not owned; governors
  /// are one-shot — install a fresh one per attempt. A tripped limit is
  /// reported in `SeqResult::Limit` with the state stopped at a completed
  /// round boundary, so a retry resumes the deterministic chain
  /// bit-identically. Null = ungoverned.
  support::ResourceGovernor *Governor = nullptr;
  /// Compile the single whole-program summary relation of the paper's
  /// formulae instead of the default per-procedure split (one
  /// `Summary_<proc>` relation per call-graph SCC, giving the evaluator's
  /// DAG scheduler call-graph-wide parallelism). Verdicts, witnesses, and
  /// per-query answers are identical either way; round counts and the
  /// early-stop behaviour differ (the split always solves the full
  /// fixpoint — per-relation work replaces the monolithic early out).
  /// Escape hatch for A/B comparison (`--monolithic-summary`).
  bool MonolithicSummary = false;
};

struct SeqResult {
  bool Reachable = false;
  bool TargetFound = true;   ///< False if the label did not exist.
  /// Which governor limit stopped the solve (`None` = ran to completion).
  /// When set, `Reachable` and the iteration counts reflect only the
  /// completed rounds; other counters still cover the work done.
  support::ResourceLimit Limit = support::ResourceLimit::None;
  /// The solver stopped at SeqOptions::MaxIterations before converging;
  /// `Reachable` then only reflects the states found so far.
  bool HitIterationLimit = false;
  uint64_t Iterations = 0;   ///< Outer fixpoint rounds of the main relation.
  uint64_t DeltaRounds = 0;  ///< Rounds the main relation ran in delta mode.
  size_t SummaryNodes = 0;   ///< Dag size of the final summary BDD.
  size_t PeakLiveNodes = 0;  ///< Peak BDD nodes in the manager.
  uint64_t BddNodesCreated = 0;  ///< Total BDD nodes allocated.
  uint64_t BddCacheLookups = 0;  ///< Computed-cache probes.
  uint64_t BddCacheHits = 0;     ///< Computed-cache hits.
  /// Full BDD-manager counter snapshot (per-op cache hit/miss split,
  /// GC reclaim totals, peak nodes). The scalar fields above remain the
  /// common subset consumers already index.
  BddStats Bdd;
  double Seconds = 0.0;      ///< Wall-clock solve time (excludes parsing).
  /// Per-relation evaluator statistics, keyed by relation name.
  std::map<std::string, fpc::RelStats> Relations;
  /// Narrow-round generalized-cofactor counters (restrict-vs-constrain
  /// A/B): applications and summed operand support sizes before/after.
  fpc::CofactorStats Cofactor;
  /// Session mode only: fixpoint rounds of this query that were served
  /// from state persisted by earlier queries, vs rounds newly evaluated.
  /// A one-shot solve reports (0, Iterations).
  uint64_t SummariesReused = 0;
  uint64_t SummariesRecomputed = 0;
  /// Dependency SCCs solved on the worker pool (`Threads > 1` only; the
  /// per-worker BDD counters are folded into `Bdd` via BddStats::merge).
  uint64_t SccsSolvedParallel = 0;
  /// Intra-SCC parallelism (`Threads > 1` only): semi-naive rounds whose
  /// distributive products ran on the pool, the products dispatched, and
  /// the BDD nodes the cached importers translated across manager
  /// boundaries (the overhead the cost gate bounds).
  uint64_t RoundsParallel = 0;
  uint64_t DisjunctsParallel = 0;
  uint64_t ImportedNodes = 0;
  /// Width of the solved fixpoint condensation: the number of independent
  /// solve units the evaluator's DAG scheduler had to play with. Under
  /// the per-procedure split this equals the program's call-graph SCC
  /// count; the monolithic compilation reports the (1–4 wide) relation
  /// condensation of the paper's formulae.
  unsigned CondensationWidth = 0;
  /// Number of summary relations compiled (call-graph SCCs under the
  /// split, 1 monolithic).
  unsigned SummaryRelations = 0;
};

/// Checks whether (ProcId, Pc) is reachable in \p Cfg's program.
SeqResult checkReachability(const bp::ProgramCfg &Cfg, unsigned ProcId,
                            unsigned Pc, const SeqOptions &Opts);

/// Checks whether the statement labelled \p Label is reachable.
SeqResult checkReachabilityOfLabel(const bp::ProgramCfg &Cfg,
                                   const std::string &Label,
                                   const SeqOptions &Opts);

/// Cross-query incremental solving over one program: the equation system,
/// BDD manager, evaluator memos, and the fixpoint rounds ("onion rings")
/// computed so far persist across queries. Each `solve` first *replays*
/// the recorded rounds against the new target — answering entirely from
/// state when an early stop (or the iteration cap) would have fired within
/// them — and only then resumes live iteration where the last query left
/// off. Because the round sequence is deterministic and target-independent
/// (the early-stop target only decides *when to stop*, never what a round
/// computes), every query's verdict, iteration count, and round values are
/// bit-identical to a fresh `checkReachability` with the same options.
/// The caller keeps \p Cfg alive for the session's lifetime. Options are
/// fixed at construction; only the target varies per query.
class SeqSession {
public:
  SeqSession(const bp::ProgramCfg &Cfg, const SeqOptions &Opts);
  ~SeqSession();
  SeqSession(const SeqSession &) = delete;
  SeqSession &operator=(const SeqSession &) = delete;

  SeqResult solve(unsigned ProcId, unsigned Pc);
  /// Label query; `TargetFound` false when the label does not exist.
  SeqResult solveLabel(const std::string &Label);
  /// Witness query, matching `checkReachabilityWithWitness` (which solves
  /// the EntryForward system with ring recording): the session's witness
  /// sub-session solves that system once and extracts a trace per target.
  WitnessResult solveWithWitness(unsigned ProcId, unsigned Pc);

  /// Would a solve of (ProcId, Pc) — witness extraction included when
  /// \p Witness — be answered entirely from already-solved state, without
  /// evaluating new fixpoint rounds? (Batch drivers serve such targets
  /// first. Non-const: probing encodes the target over the session's
  /// manager.)
  bool answersFromState(unsigned ProcId, unsigned Pc, bool Witness = false);

  /// Installs (or clears, with null) a per-attempt resource governor on
  /// this session's solving state: the next solve runs under it and stops
  /// at a completed round boundary when a limit trips, leaving the
  /// session valid — a retry under a fresh (or no) governor resumes the
  /// deterministic chain bit-identically. The caller owns the governor
  /// and must keep it alive across the governed solve.
  void setGovernor(support::ResourceGovernor *G);

  /// Drops the BDD computed cache (a pure performance valve for
  /// long-lived sessions under memory pressure); all solved state —
  /// summaries, rounds, memos — is kept and later queries remain
  /// bit-identical to fresh solves.
  void clearComputedCache();

  /// Session memory introspection, for callers that budget many resident
  /// sessions (the query server's pool). `liveNodes` counts *reachable*
  /// BDD nodes across the session's managers (main, witness sub-session,
  /// and parallel worker managers) — garbage awaiting the next collection
  /// is excluded, so the gauge reflects what the session actually
  /// retains, not how much the last solve churned. `peakLiveNodes` is the
  /// high-water mark of that retained count, sampled at query boundaries.
  /// `memoryFootprint` is a bytes estimate of the same resident state:
  /// reachable nodes times their storage share plus the computed caches —
  /// a cache that was `clearComputedCache`d and not touched since is
  /// discounted (allocated but dead). Estimates, not RSS; they exist so
  /// an eviction policy has a monotone-ish signal, not for accounting.
  /// Each read costs a mark pass over the node table — query-boundary
  /// cheap, not per-operation cheap.
  size_t liveNodes() const;
  size_t peakLiveNodes() const;
  size_t memoryFootprint() const;

  const SeqOptions &options() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Renders the fixed-point equation system the given algorithm would solve
/// for \p Cfg in its *monolithic* compilation (the paper's "one page of
/// formulae"), for documentation and golden tests.
std::string formulaText(const bp::ProgramCfg &Cfg, SeqAlgorithm Alg);

/// Options-aware variant: renders the system \p Opts would actually solve,
/// including the per-procedure split compilation when
/// `Opts.MonolithicSummary` is false.
std::string formulaText(const bp::ProgramCfg &Cfg, const SeqOptions &Opts);

} // namespace reach
} // namespace getafix

#endif // GETAFIX_REACH_SEQREACH_H
