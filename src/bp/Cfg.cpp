//===- Cfg.cpp - Control-flow graph construction --------------------------===//

#include "bp/Cfg.h"

using namespace getafix;
using namespace getafix::bp;

namespace {

class CfgBuilder {
public:
  CfgBuilder(const Proc &P, unsigned ProcId) : P(P) {
    Cfg.ProcId = ProcId;
  }

  ProcCfg build();

private:
  unsigned freshPc() { return NextPc++; }

  unsigned lowerList(const std::vector<StmtPtr> &Body, unsigned Cur);
  unsigned lowerStmt(const Stmt &S, unsigned Cur);

  void addAssume(unsigned From, unsigned To, const Expr *Cond, bool Negate) {
    CfgEdge E;
    E.K = CfgEdge::Kind::Assume;
    E.From = From;
    E.To = To;
    E.Cond = Cond;
    E.NegateCond = Negate;
    Cfg.Edges.push_back(std::move(E));
  }

  const Proc &P;
  ProcCfg Cfg;
  unsigned NextPc = 0;
  /// Goto edges awaiting label resolution: (edge index, target label).
  std::vector<std::pair<size_t, std::string>> PendingGotos;
};

} // namespace

unsigned CfgBuilder::lowerList(const std::vector<StmtPtr> &Body,
                               unsigned Cur) {
  for (const StmtPtr &S : Body)
    Cur = lowerStmt(*S, Cur);
  return Cur;
}

unsigned CfgBuilder::lowerStmt(const Stmt &S, unsigned Cur) {
  if (!S.Label.empty())
    Cfg.LabelPcs[S.Label] = Cur;

  switch (S.Kind) {
  case StmtKind::Skip: {
    unsigned Next = freshPc();
    addAssume(Cur, Next, nullptr, false);
    return Next;
  }
  case StmtKind::Assume: {
    unsigned Next = freshPc();
    addAssume(Cur, Next, S.Cond.get(), false);
    return Next;
  }
  case StmtKind::Assign: {
    unsigned Next = freshPc();
    CfgEdge E;
    E.K = CfgEdge::Kind::Assign;
    E.From = Cur;
    E.To = Next;
    E.Lhs = S.LhsRefs;
    for (const ExprPtr &Rhs : S.Exprs)
      E.Rhs.push_back(Rhs.get());
    Cfg.Edges.push_back(std::move(E));
    return Next;
  }
  case StmtKind::Call:
  case StmtKind::CallAssign: {
    unsigned Next = freshPc();
    CfgEdge E;
    E.K = CfgEdge::Kind::Call;
    E.From = Cur;
    E.To = Next;
    E.CalleeId = S.CalleeId;
    E.Lhs = S.LhsRefs;
    for (const ExprPtr &Arg : S.Exprs)
      E.Rhs.push_back(Arg.get());
    Cfg.Edges.push_back(std::move(E));
    return Next;
  }
  case StmtKind::Return: {
    CfgExit Exit;
    Exit.Pc = Cur;
    for (const ExprPtr &E : S.Exprs)
      Exit.ReturnExprs.push_back(E.get());
    Cfg.Exits.push_back(std::move(Exit));
    // Anything after a return is unreachable; give it a fresh PC with no
    // in-edge so downstream code can still index it.
    return freshPc();
  }
  case StmtKind::Goto: {
    CfgEdge E;
    E.K = CfgEdge::Kind::Assume;
    E.From = Cur;
    E.To = 0; // Patched below.
    Cfg.Edges.push_back(std::move(E));
    PendingGotos.emplace_back(Cfg.Edges.size() - 1, S.CalleeName);
    return freshPc();
  }
  case StmtKind::If: {
    unsigned ThenStart = freshPc();
    addAssume(Cur, ThenStart, S.Cond.get(), false);
    unsigned ThenEnd = lowerList(S.ThenBody, ThenStart);
    if (S.ElseBody.empty()) {
      unsigned Join = freshPc();
      addAssume(Cur, Join, S.Cond.get(), true);
      addAssume(ThenEnd, Join, nullptr, false);
      return Join;
    }
    unsigned ElseStart = freshPc();
    addAssume(Cur, ElseStart, S.Cond.get(), true);
    unsigned ElseEnd = lowerList(S.ElseBody, ElseStart);
    unsigned Join = freshPc();
    addAssume(ThenEnd, Join, nullptr, false);
    addAssume(ElseEnd, Join, nullptr, false);
    return Join;
  }
  case StmtKind::While: {
    unsigned BodyStart = freshPc();
    addAssume(Cur, BodyStart, S.Cond.get(), false);
    unsigned BodyEnd = lowerList(S.ThenBody, BodyStart);
    addAssume(BodyEnd, Cur, nullptr, false); // Back edge.
    unsigned After = freshPc();
    addAssume(Cur, After, S.Cond.get(), true);
    return After;
  }
  }
  assert(false && "unhandled statement kind");
  return Cur;
}

ProcCfg CfgBuilder::build() {
  unsigned Entry = freshPc();
  assert(Entry == 0 && "entry PC must be 0");
  (void)Entry;
  unsigned End = lowerList(P.Body, 0);

  // Implicit fall-through exit. If the procedure returns values, they are
  // nondeterministic (the Bebop convention for a missing return).
  CfgExit Implicit;
  Implicit.Pc = End;
  Implicit.Implicit = true;
  for (unsigned I = 0; I < P.NumReturns; ++I) {
    Cfg.OwnedExprs.push_back(std::make_unique<Expr>(ExprKind::Nondet));
    Implicit.ReturnExprs.push_back(Cfg.OwnedExprs.back().get());
  }
  Cfg.Exits.push_back(std::move(Implicit));

  for (auto &[EdgeIdx, Label] : PendingGotos) {
    auto It = Cfg.LabelPcs.find(Label);
    assert(It != Cfg.LabelPcs.end() && "sema guarantees goto targets exist");
    Cfg.Edges[EdgeIdx].To = It->second;
  }

  Cfg.NumPcs = NextPc;
  Cfg.OutEdges.assign(Cfg.NumPcs, {});
  for (unsigned I = 0; I < Cfg.Edges.size(); ++I)
    Cfg.OutEdges[Cfg.Edges[I].From].push_back(I);
  return std::move(Cfg);
}

ProgramCfg bp::buildCfg(const Program &Prog) {
  ProgramCfg Result;
  Result.Prog = &Prog;
  for (unsigned Id = 0; Id < Prog.Procs.size(); ++Id)
    Result.Procs.push_back(CfgBuilder(Prog.proc(Id), Id).build());
  return Result;
}

bool ProgramCfg::findLabelPc(const std::string &Label, unsigned &ProcId,
                             unsigned &Pc) const {
  for (const ProcCfg &P : Procs) {
    auto It = P.LabelPcs.find(Label);
    if (It != P.LabelPcs.end()) {
      ProcId = P.ProcId;
      Pc = It->second;
      return true;
    }
  }
  return false;
}
