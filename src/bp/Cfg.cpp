//===- Cfg.cpp - Control-flow graph construction --------------------------===//

#include "bp/Cfg.h"

#include <algorithm>

using namespace getafix;
using namespace getafix::bp;

namespace {

class CfgBuilder {
public:
  CfgBuilder(const Proc &P, unsigned ProcId) : P(P) {
    Cfg.ProcId = ProcId;
  }

  ProcCfg build();

private:
  unsigned freshPc() { return NextPc++; }

  unsigned lowerList(const std::vector<StmtPtr> &Body, unsigned Cur);
  unsigned lowerStmt(const Stmt &S, unsigned Cur);

  void addAssume(unsigned From, unsigned To, const Expr *Cond, bool Negate) {
    CfgEdge E;
    E.K = CfgEdge::Kind::Assume;
    E.From = From;
    E.To = To;
    E.Cond = Cond;
    E.NegateCond = Negate;
    Cfg.Edges.push_back(std::move(E));
  }

  const Proc &P;
  ProcCfg Cfg;
  unsigned NextPc = 0;
  /// Goto edges awaiting label resolution: (edge index, target label).
  std::vector<std::pair<size_t, std::string>> PendingGotos;
};

} // namespace

unsigned CfgBuilder::lowerList(const std::vector<StmtPtr> &Body,
                               unsigned Cur) {
  for (const StmtPtr &S : Body)
    Cur = lowerStmt(*S, Cur);
  return Cur;
}

unsigned CfgBuilder::lowerStmt(const Stmt &S, unsigned Cur) {
  if (!S.Label.empty())
    Cfg.LabelPcs[S.Label] = Cur;

  switch (S.Kind) {
  case StmtKind::Skip: {
    unsigned Next = freshPc();
    addAssume(Cur, Next, nullptr, false);
    return Next;
  }
  case StmtKind::Assume: {
    unsigned Next = freshPc();
    addAssume(Cur, Next, S.Cond.get(), false);
    return Next;
  }
  case StmtKind::Assign: {
    unsigned Next = freshPc();
    CfgEdge E;
    E.K = CfgEdge::Kind::Assign;
    E.From = Cur;
    E.To = Next;
    E.Lhs = S.LhsRefs;
    for (const ExprPtr &Rhs : S.Exprs)
      E.Rhs.push_back(Rhs.get());
    Cfg.Edges.push_back(std::move(E));
    return Next;
  }
  case StmtKind::Call:
  case StmtKind::CallAssign: {
    unsigned Next = freshPc();
    CfgEdge E;
    E.K = CfgEdge::Kind::Call;
    E.From = Cur;
    E.To = Next;
    E.CalleeId = S.CalleeId;
    E.Lhs = S.LhsRefs;
    for (const ExprPtr &Arg : S.Exprs)
      E.Rhs.push_back(Arg.get());
    Cfg.Edges.push_back(std::move(E));
    return Next;
  }
  case StmtKind::Return: {
    CfgExit Exit;
    Exit.Pc = Cur;
    for (const ExprPtr &E : S.Exprs)
      Exit.ReturnExprs.push_back(E.get());
    Cfg.Exits.push_back(std::move(Exit));
    // Anything after a return is unreachable; give it a fresh PC with no
    // in-edge so downstream code can still index it.
    return freshPc();
  }
  case StmtKind::Goto: {
    CfgEdge E;
    E.K = CfgEdge::Kind::Assume;
    E.From = Cur;
    E.To = 0; // Patched below.
    Cfg.Edges.push_back(std::move(E));
    PendingGotos.emplace_back(Cfg.Edges.size() - 1, S.CalleeName);
    return freshPc();
  }
  case StmtKind::If: {
    unsigned ThenStart = freshPc();
    addAssume(Cur, ThenStart, S.Cond.get(), false);
    unsigned ThenEnd = lowerList(S.ThenBody, ThenStart);
    if (S.ElseBody.empty()) {
      unsigned Join = freshPc();
      addAssume(Cur, Join, S.Cond.get(), true);
      addAssume(ThenEnd, Join, nullptr, false);
      return Join;
    }
    unsigned ElseStart = freshPc();
    addAssume(Cur, ElseStart, S.Cond.get(), true);
    unsigned ElseEnd = lowerList(S.ElseBody, ElseStart);
    unsigned Join = freshPc();
    addAssume(ThenEnd, Join, nullptr, false);
    addAssume(ElseEnd, Join, nullptr, false);
    return Join;
  }
  case StmtKind::While: {
    unsigned BodyStart = freshPc();
    addAssume(Cur, BodyStart, S.Cond.get(), false);
    unsigned BodyEnd = lowerList(S.ThenBody, BodyStart);
    addAssume(BodyEnd, Cur, nullptr, false); // Back edge.
    unsigned After = freshPc();
    addAssume(Cur, After, S.Cond.get(), true);
    return After;
  }
  }
  assert(false && "unhandled statement kind");
  return Cur;
}

ProcCfg CfgBuilder::build() {
  unsigned Entry = freshPc();
  assert(Entry == 0 && "entry PC must be 0");
  (void)Entry;
  unsigned End = lowerList(P.Body, 0);

  // Implicit fall-through exit. If the procedure returns values, they are
  // nondeterministic (the Bebop convention for a missing return).
  CfgExit Implicit;
  Implicit.Pc = End;
  Implicit.Implicit = true;
  for (unsigned I = 0; I < P.NumReturns; ++I) {
    Cfg.OwnedExprs.push_back(std::make_unique<Expr>(ExprKind::Nondet));
    Implicit.ReturnExprs.push_back(Cfg.OwnedExprs.back().get());
  }
  Cfg.Exits.push_back(std::move(Implicit));

  for (auto &[EdgeIdx, Label] : PendingGotos) {
    auto It = Cfg.LabelPcs.find(Label);
    assert(It != Cfg.LabelPcs.end() && "sema guarantees goto targets exist");
    Cfg.Edges[EdgeIdx].To = It->second;
  }

  Cfg.NumPcs = NextPc;
  Cfg.OutEdges.assign(Cfg.NumPcs, {});
  for (unsigned I = 0; I < Cfg.Edges.size(); ++I)
    Cfg.OutEdges[Cfg.Edges[I].From].push_back(I);
  return std::move(Cfg);
}

ProgramCfg bp::buildCfg(const Program &Prog) {
  ProgramCfg Result;
  Result.Prog = &Prog;
  for (unsigned Id = 0; Id < Prog.Procs.size(); ++Id)
    Result.Procs.push_back(CfgBuilder(Prog.proc(Id), Id).build());
  return Result;
}

bool ProgramCfg::findLabelPc(const std::string &Label, unsigned &ProcId,
                             unsigned &Pc) const {
  for (const ProcCfg &P : Procs) {
    auto It = P.LabelPcs.find(Label);
    if (It != P.LabelPcs.end()) {
      ProcId = P.ProcId;
      Pc = It->second;
      return true;
    }
  }
  return false;
}

CallGraph bp::buildCallGraph(const ProgramCfg &Cfg) {
  CallGraph G;
  const size_t N = Cfg.Procs.size();
  G.Callees.assign(N, {});
  G.Callers.assign(N, {});
  for (const ProcCfg &P : Cfg.Procs)
    for (const CfgEdge &E : P.Edges)
      if (E.K == CfgEdge::Kind::Call) {
        auto &Cs = G.Callees[P.ProcId];
        if (std::find(Cs.begin(), Cs.end(), E.CalleeId) == Cs.end()) {
          Cs.push_back(E.CalleeId);
          G.Callers[E.CalleeId].push_back(P.ProcId);
        }
      }

  // Iterative Tarjan. SCCs pop only after every SCC they reach has
  // popped, so assigning indices in pop order yields the callees-first
  // numbering CallGraph documents.
  G.SccOf.assign(N, ~0u);
  std::vector<unsigned> Index(N, ~0u), Low(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<unsigned> Stack;
  unsigned Next = 0;
  struct Frame {
    unsigned Proc;
    size_t EdgeIdx;
  };
  std::vector<Frame> Dfs;
  for (unsigned Root = 0; Root < N; ++Root) {
    if (Index[Root] != ~0u)
      continue;
    Dfs.push_back({Root, 0});
    Index[Root] = Low[Root] = Next++;
    Stack.push_back(Root);
    OnStack[Root] = true;
    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      if (F.EdgeIdx < G.Callees[F.Proc].size()) {
        unsigned Callee = G.Callees[F.Proc][F.EdgeIdx++];
        if (Index[Callee] == ~0u) {
          Dfs.push_back({Callee, 0});
          Index[Callee] = Low[Callee] = Next++;
          Stack.push_back(Callee);
          OnStack[Callee] = true;
        } else if (OnStack[Callee]) {
          Low[F.Proc] = std::min(Low[F.Proc], Index[Callee]);
        }
        continue;
      }
      unsigned Proc = F.Proc;
      Dfs.pop_back();
      if (!Dfs.empty())
        Low[Dfs.back().Proc] = std::min(Low[Dfs.back().Proc], Low[Proc]);
      if (Low[Proc] == Index[Proc]) {
        unsigned Scc = static_cast<unsigned>(G.SccMembers.size());
        G.SccMembers.push_back({});
        while (true) {
          unsigned Member = Stack.back();
          Stack.pop_back();
          OnStack[Member] = false;
          G.SccOf[Member] = Scc;
          G.SccMembers.back().push_back(Member);
          if (Member == Proc)
            break;
        }
        std::sort(G.SccMembers.back().begin(), G.SccMembers.back().end());
      }
    }
  }

  G.SccCallees.assign(G.SccMembers.size(), {});
  G.SccCallers.assign(G.SccMembers.size(), {});
  for (unsigned Proc = 0; Proc < N; ++Proc)
    for (unsigned Callee : G.Callees[Proc]) {
      unsigned A = G.SccOf[Proc], B = G.SccOf[Callee];
      if (A == B)
        continue;
      auto &Out = G.SccCallees[A];
      if (std::find(Out.begin(), Out.end(), B) == Out.end()) {
        Out.push_back(B);
        G.SccCallers[B].push_back(A);
      }
    }
  for (auto &V : G.SccCallees)
    std::sort(V.begin(), V.end());
  for (auto &V : G.SccCallers)
    std::sort(V.begin(), V.end());
  return G;
}
