//===- Evaluator.h - Symbolic fixed-point evaluation ------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic (BDD-backed) evaluator for the fixed-point calculus — the
/// MUCKE stand-in. It implements the paper's *algorithmic semantics*
/// (Section 3, `Evaluate`): to solve `R = B`, iterate from the empty
/// relation, and on every round re-evaluate each relation occurring in `B`
/// under the current interpretation of the in-flight relations. For
/// positive systems this converges to the least fixed-point
/// (Knaster–Tarski); for non-positive systems (the optimized entry-forward
/// algorithm) it is the paper's operational algorithm, and termination is
/// the algorithm author's obligation.
///
/// Variables are mapped to blocks of BDD bits by a `Layout`; the
/// `interleaved` layout places the same field's copies on adjacent levels,
/// which is the variable-ordering style Getafix feeds MUCKE.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_FPCALC_EVALUATOR_H
#define GETAFIX_FPCALC_EVALUATOR_H

#include "bdd/Bdd.h"
#include "fpcalc/Calculus.h"
#include "fpcalc/RingLog.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace getafix {
namespace fpc {

/// Maps every calculus variable to its block of BDD variables (bit 0 is the
/// least significant bit of the encoded value).
class Layout {
public:
  /// Allocates variables in declaration order, bits consecutive.
  static Layout sequential(const System &Sys, BddManager &Mgr);

  /// Allocates the listed groups first, interleaving the bits of each
  /// group's members (copies of the same field sit on adjacent levels);
  /// remaining variables follow sequentially. All members of a group must
  /// share a domain.
  static Layout interleaved(const System &Sys, BddManager &Mgr,
                            const std::vector<std::vector<VarId>> &Groups);

  const std::vector<unsigned> &bits(VarId V) const {
    assert(V < Bits.size() && "unknown variable in layout");
    return Bits[V];
  }

private:
  std::vector<std::vector<unsigned>> Bits;
};

struct EvalOptions {
  /// When non-null, fixpoint iteration of the *requested* relation stops as
  /// soon as the partial result intersects this set (reachability early
  /// termination — the engineered form of the Appendix formula's first
  /// disjunct).
  const Bdd *EarlyStop = nullptr;
  /// Safety valve for non-monotone systems; 0 means unlimited.
  uint64_t MaxIterations = 0;
  /// When non-null, receives the requested relation's value after every
  /// outer Tarski round (the "onion rings" witness extraction walks
  /// backwards through; see reach::checkReachabilityWithWitness). The log
  /// stores rounds delta-compressed and reconstitutes full rings on
  /// demand, bit-identically (see RingLog.h).
  RingLog *Rings = nullptr;
};

struct EvalResult {
  Bdd Value;
  bool HitIterationLimit = false;
  bool EarlyStopped = false;
};

/// The persistent half of one relation's fixpoint iteration: everything a
/// later continuation needs to carry on exactly where a previous
/// (early-stopped or iteration-capped) solve left off. The fixpoint round
/// sequence is deterministic, so `resume` extends the identical Tarski
/// chain a single uninterrupted solve would have produced — this is what
/// lets a query session stop at one target's round and pick up from there
/// for the next target, bit-identically to solving each query fresh.
struct FixpointState {
  Bdd Value;  ///< S_r: the accumulated relation after `Rounds` rounds.
  Bdd Delta;  ///< Frontier feeding the next semi-naive round.
  /// Body evaluations performed so far (the final, no-change round of a
  /// saturated solve included — matching the `Iterations` a fresh solve
  /// reports).
  uint64_t Rounds = 0;
  bool Saturated = false; ///< `Value` is the fixpoint; resume is a no-op.
  /// BDD nodes the last round allocated (main manager plus any workers) —
  /// the cost signal the next round's disjunct-parallel gate reads.
  /// Persisted so a resumed session gates exactly like an uninterrupted
  /// solve.
  uint64_t LastRoundCreated = 0;
};

class Evaluator;
struct ParallelContext; // Evaluator.cpp: worker pool + per-worker managers.
struct WorkerContext;   // Evaluator.cpp: one worker's solving state.

/// Counters of the evaluator's parallel SCC scheduling (zero until a
/// `Threads > 1` solve actually dispatched work). Cumulative over the
/// evaluator's lifetime, like `stats()`.
struct ParallelStats {
  uint64_t SccsSolvedParallel = 0; ///< SCC tasks run on the worker pool.
  uint64_t Schedules = 0;          ///< Parallel scheduling rounds.
  uint64_t Steals = 0;             ///< Pool-level work-stealing events.
  /// Intra-SCC parallelism: semi-naive rounds whose distributive
  /// disjuncts ran on the worker pool, and the disjunct/occurrence
  /// products dispatched across all such rounds.
  uint64_t RoundsParallel = 0;
  uint64_t DisjunctsParallel = 0;
  /// Nodes translated across manager boundaries by the cached importers
  /// (both directions, all workers) — the overhead the disjunct-parallel
  /// cost gate exists to keep dominated.
  uint64_t ImportedNodes = 0;
  unsigned Threads = 1; ///< Configured worker count.

  ParallelStats since(const ParallelStats &Before) const {
    ParallelStats D = *this;
    D.SccsSolvedParallel -= Before.SccsSolvedParallel;
    D.Schedules -= Before.Schedules;
    D.Steals -= Before.Steals;
    D.RoundsParallel -= Before.RoundsParallel;
    D.DisjunctsParallel -= Before.DisjunctsParallel;
    D.ImportedNodes -= Before.ImportedNodes;
    return D;
  }
};

/// A `FixpointState` bundled with its recorded per-round values (the
/// "onion rings") and the cross-query replay logic: given a new target,
/// `query` first re-runs the per-round stop checks a fresh solve performs
/// — early-stop intersection, then iteration cap — against the *recorded*
/// rings, answering entirely from state whenever a fresh solve would have
/// stopped within the rounds already computed; only when the answer needs
/// rounds beyond the recorded state does it resume live iteration. Since
/// ring values are target-independent and the round sequence is
/// deterministic, every answer (verdict, stop round, stopped-at value) is
/// bit-identical to a fresh uninterrupted solve under the same options.
class IncrementalFixpoint {
public:
  struct Answer {
    uint64_t Iterations = 0; ///< The round a fresh solve would stop at.
    bool Reachable = false;  ///< Target intersects the stopped-at value.
    bool EarlyStopped = false;
    bool HitIterationLimit = false;
    Bdd Value;               ///< The value a fresh solve would return.
    uint64_t RoundsReused = 0;   ///< Rounds served from recorded state.
    uint64_t RoundsComputed = 0; ///< Rounds evaluated live for this query.
  };

  /// Answers one reachability query over \p Rel, replaying recorded
  /// rounds first and resuming \p Ev only as needed.
  Answer query(Evaluator &Ev, RelId Rel, const Bdd &Target, bool EarlyStop,
               uint64_t MaxIterations);

  /// Would `query` answer without evaluating any new round? (Used by
  /// batch drivers to serve state-answerable targets first.)
  bool answersFromState(const Bdd &Target, bool EarlyStop,
                        uint64_t MaxIterations) const;

  /// Drives the recorded iteration to its target-independent stopping
  /// point — saturation, or the \p MaxIterations cap — with no early-stop
  /// target, recording every round. This is the witness extractor's solve:
  /// idempotent over an already-complete state, so one recorded chain
  /// serves any number of witness extractions *and* plain replay queries
  /// (one solve per session, ever).
  EvalResult complete(Evaluator &Ev, RelId Rel, uint64_t MaxIterations);

  const RingLog &rings() const { return Rings; }
  const FixpointState &state() const { return St; }
  /// Keyframe interval of the delta-compressed ring log (see RingLog.h).
  void setKeyframeInterval(uint64_t K) { Rings.setKeyframeInterval(K); }

private:
  /// Replay core: true when the recorded state determines the answer.
  bool tryReplay(const Bdd &Target, bool EarlyStop, uint64_t MaxIterations,
                 Answer &A) const;

  FixpointState St;
  RingLog Rings;
};

class Evaluator {
public:
  /// \p Cofactor selects the Coudert–Madre frontier-aware relational
  /// product: in narrow delta rounds, the transition/body operand of
  /// `andExists` is generalized-cofactored against the frontier-bearing
  /// conjunct chain before the product. Purely a performance knob —
  /// `f ↓ c & c == f & c` for both cofactors makes every product's result
  /// bit-identical; it exists for the restrict-vs-constrain ablation.
  Evaluator(const System &Sys, BddManager &Mgr, Layout L,
            EvalStrategy Strategy = EvalStrategy::SemiNaive,
            CofactorMode Cofactor = CofactorMode::Constrain);
  ~Evaluator();

  /// Solves independent dependency SCCs of a top-level fixpoint on \p N
  /// worker threads (1 = sequential, the default). Each worker owns a
  /// private `BddManager` sharing the main manager's variable order;
  /// solved SCC values are imported back into the main manager, where
  /// ROBDD canonicity makes every downstream round bit-identical to a
  /// sequential solve (the schedule respects dependencies, and an SCC's
  /// solution is a pure function of its callees' values). The worker pool
  /// is created lazily on the first parallel schedule and persists across
  /// solves and `resume` calls, so query sessions keep it for their
  /// lifetime.
  void setThreads(unsigned N);
  unsigned threads() const { return Threads; }
  /// Cost gate of the intra-SCC disjunct parallelism (`Threads > 1`,
  /// top-level semi-naive solves): a round fans its distributive disjunct
  /// products out over the worker pool only when the *previous* round
  /// allocated at least this many BDD nodes — small rounds stay
  /// sequential so cross-manager import overhead never dominates. 0 (the
  /// default) selects the built-in valve, `cacheSlots()/2` — the same
  /// created-nodes signal and scale the wide/narrow frontier policy keys
  /// on. Purely a performance knob: round values are bit-identical either
  /// way.
  void setDisjunctParallelThreshold(uint64_t N) {
    DisjunctParallelThreshold = N;
  }
  uint64_t disjunctParallelThreshold() const {
    return DisjunctParallelThreshold;
  }
  /// Parallel-scheduling counters (cumulative, like `stats()`).
  const ParallelStats &parallelStats() const { return ParStats; }
  /// Aggregate BDD counters of the per-worker managers (all zero until a
  /// parallel schedule ran). Monotone; callers report per-query work via
  /// `BddStats::since`.
  BddStats workerBddStats() const;

  EvalStrategy strategy() const { return Strategy; }
  CofactorMode cofactorMode() const { return Cofactor; }
  const CofactorStats &cofactorStats() const { return CfStats; }

  /// Binds an input relation to its BDD over the formals' bits. Rebinding
  /// an already-bound input drops every memo built from the old binding
  /// (the static-subformula cache *and* completed defined relations).
  void bindInput(RelId Rel, Bdd Value);

  /// The BDD bound to an input relation (must be bound).
  const Bdd &input(RelId Rel) const {
    auto It = Inputs.find(Rel);
    assert(It != Inputs.end() && "input relation not bound");
    return It->second;
  }

  /// Solves the defining equation of \p Rel per the algorithmic semantics.
  EvalResult evaluate(RelId Rel, const EvalOptions &Opts = EvalOptions());

  /// Continues (or begins, when \p State is fresh) the fixpoint iteration
  /// of \p Rel from the caller-held \p State, honoring this call's
  /// early-stop target, iteration cap (counted against the *total* rounds
  /// in \p State), and ring recording. Returns when the iteration
  /// saturates, hits the caller's target, or hits the cap; \p State then
  /// holds everything needed to continue under different per-query
  /// options. Because the round sequence is deterministic, the rounds a
  /// resumed iteration appends are exactly the rounds a fresh
  /// uninterrupted solve would have computed. Top-level use only (no
  /// nested evaluation may be in flight).
  EvalResult resume(RelId Rel, FixpointState &State,
                    const EvalOptions &Opts = EvalOptions());

  /// Pins \p Value as the completed-solve memo for \p Rel, as if a
  /// top-level solve had produced it. For drivers that iterate a
  /// relation *chain* under per-relation round caps (the per-procedure
  /// summary split with MaxIterations): a capped, unsaturated lower
  /// relation is not memoized by `resume`, but higher relations must
  /// read exactly its truncated value rather than re-solving it to
  /// saturation behind the driver's back. Top-level use only.
  void pinCompleted(RelId Rel, const Bdd &Value) {
    assert(InFlight.empty() && "pin is a top-level operation");
    Completed[Rel] = Value;
  }

  /// Resets memoized values of defined relations (bindings stay).
  void invalidate();

  const std::map<std::string, RelStats> &stats() const { return Stats; }
  BddManager &manager() { return Mgr; }
  const Layout &layout() const { return L; }

  // Encoding helpers (used to build input-relation BDDs) ------------------
  /// BDD for `V == Value`.
  Bdd encodeEqConst(VarId V, uint64_t Value);
  /// BDD for `A == B` (same domain).
  Bdd encodeEqVar(VarId A, VarId B);
  /// BDD constraining V to valid domain values (< domain size).
  Bdd domainConstraint(VarId V);
  /// Literal for bit \p Bit of variable \p V.
  Bdd bitVar(VarId V, unsigned Bit);

  /// The dependency analysis of the system (built lazily on the first
  /// solve, after all definitions are in place).
  const DependencyGraph &dependencies();
  /// The evaluation plan for \p Rel's equation (memoized).
  const EquationPlan &plan(RelId Rel);

private:
  Bdd evalFixpoint(RelId Rel, const EvalOptions *Opts, bool *HitLimit,
                   bool *Stopped);
  /// The two iteration cores, operating on caller-held persistent state
  /// (fresh local state for one-shot solves, session state for `resume`).
  void runFixpointNaive(RelId Rel, FixpointState &St, const EvalOptions *Opts,
                        bool *HitLimit, bool *Stopped, RelStats &RS);
  void runFixpointSemiNaive(RelId Rel, FixpointState &St,
                            const EvalOptions *Opts, bool *HitLimit,
                            bool *Stopped, RelStats &RS);
  /// Pre-solves (and memoizes) the defined relations \p Rel depends on
  /// that cannot see any in-flight relation, SCC-by-SCC in topological
  /// order, so the main iteration never discovers them mid-round. Under
  /// `Threads > 1` (top level only), independent SCCs are dispatched onto
  /// the worker pool instead of solved in sequence.
  void scheduleDependencies(RelId Rel);
  /// The parallel core of `scheduleDependencies`: solves \p Pending
  /// (callees-first, no member Completed or volatile) as an SCC-task DAG
  /// on the worker pool. Returns false — leaving every relation unsolved —
  /// when the schedule has no exploitable parallelism (fewer than two
  /// SCCs).
  bool scheduleDependenciesParallel(const std::vector<RelId> &Pending);
  /// One independent product of a semi-naive round: either a whole
  /// distributive disjunct (Occ null — wide rounds, and nonlinear
  /// disjuncts in narrow rounds) or a single occurrence's frontier pass.
  struct DisjunctUnit {
    const DisjunctPlan *Disjunct;
    const SelfOccurrence *Occ;
  };
  /// The intra-SCC parallel core: evaluates \p Units on the worker pool —
  /// each worker imports its operands (inputs, completed lower relations,
  /// S, Δ) into its private manager, computes its product in isolation,
  /// and exports the result — then folds the exported values into \p Next
  /// with a balanced disjunction tree in fixed unit order (ROBDD
  /// canonicity makes the result bit-identical to the sequential left
  /// fold). Returns the BDD nodes the workers allocated, for the round's
  /// created-nodes accounting. Top-level use only.
  uint64_t evalDisjunctsParallel(RelId Rel,
                                 const std::vector<DisjunctUnit> &Units,
                                 const Bdd &S, const Bdd &Delta, bool Wide,
                                 Bdd &Next);
  /// Cumulative importer translations / worker-manager allocations across
  /// all live workers (before/after deltas bracket one parallel run).
  uint64_t importerTranslations() const;
  uint64_t workerNodesCreated() const;
  /// Drains every worker's per-relation and cofactor counters into the
  /// main evaluator's (merge-then-reset, so the next drain cannot
  /// double-count). Single-threaded use, after a run has joined.
  void mergeWorkerStats();
  void ensureParallelContext();
  /// The per-worker solving state for pool worker \p Worker, built on its
  /// first task (each slot is touched only by its owning worker).
  WorkerContext &workerContext(unsigned Worker);
  /// Drops every worker evaluator's memo layers; must accompany any drop
  /// of this evaluator's own Completed/StaticCache (rebind, invalidate),
  /// or the next parallel schedule could export values solved under the
  /// old bindings.
  void resetWorkerMemos();
  Bdd evalFormula(const Formula &F);
  Bdd evalFormulaUncached(const Formula &F);
  bool isStatic(const Formula &F);
  Bdd relValue(RelId Rel);
  Bdd applyArgs(RelId Rel, const std::vector<Term> &Args, Bdd Value);
  BddCube cubeFor(const std::vector<VarId> &Bound);
  bool dependsOnInFlight(RelId Rel) const;

  const System &Sys;
  BddManager &Mgr;
  Layout L;
  EvalStrategy Strategy;
  CofactorMode Cofactor;
  CofactorStats CfStats;

  /// Parallel SCC scheduling (Threads > 1): the work-stealing pool plus
  /// per-worker BDD managers/evaluators/importers. Lazily created,
  /// persistent across solves (sessions keep their pool warm).
  unsigned Threads = 1;
  uint64_t DisjunctParallelThreshold = 0; ///< 0 = auto (cacheSlots()/2).
  std::unique_ptr<ParallelContext> Par;
  ParallelStats ParStats;
  /// Counters of worker managers retired by `setThreads` pool rebuilds,
  /// so `workerBddStats()` stays monotone for `since`-style callers.
  BddStats RetiredWorkerBdd;

  std::map<RelId, Bdd> Inputs;
  std::map<RelId, Bdd> InFlight;  ///< Current interpretation per Section 3.
  std::map<RelId, Bdd> Completed; ///< Memo for env-independent relations.
  std::map<std::string, RelStats> Stats;

  /// Subformulas mentioning only input relations are constant across
  /// fixpoint rounds; their BDDs are memoized here.
  std::map<const Formula *, Bdd> StaticCache;
  std::map<const Formula *, bool> StaticKind;

  /// Built on first use; safe to cache because definitions are frozen once
  /// evaluation starts (System::define asserts single definition).
  std::unique_ptr<DependencyGraph> Graph;
  std::map<RelId, EquationPlan> Plans;

  /// Delta-substitution state: while non-null, this specific RelApp node
  /// is evaluated against DeltaValue instead of the in-flight value, and
  /// `Or` nodes on the root-to-occurrence path evaluate only their on-path
  /// child (see SelfOccurrence::Path).
  const Formula *DeltaApp = nullptr;
  const std::vector<const Formula *> *DeltaPath = nullptr;
  Bdd DeltaValue;

  /// Per-round memo, live only inside a delta round (InDeltaRound). A
  /// subformula off the current occurrence path sees the same environment
  /// (the full in-flight S) in every pass of the round, so its value is
  /// computed once per round — without this, a disjunct with n occurrences
  /// re-evaluates its big S-reading subtrees n times per round, which is
  /// exactly the work semi-naive exists to avoid. Cleared at round start.
  bool InDeltaRound = false;
  std::map<const Formula *, Bdd> RoundCache;

  bool onDeltaPath(const Formula *F) const {
    return DeltaPath && std::find(DeltaPath->begin(), DeltaPath->end(), F) !=
                            DeltaPath->end();
  }
};

} // namespace fpc
} // namespace getafix

#endif // GETAFIX_FPCALC_EVALUATOR_H
