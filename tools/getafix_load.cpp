//===- getafix_load.cpp - Load driver for the getafixd server -------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a mixed multi-program query workload against a running
/// `getafixd` and reports client-side latency percentiles, throughput,
/// and the server's pool counters (hits, reopens, cache-clears,
/// evictions).
///
///   getafix_load --port N [--host H] | --socket PATH
///     --program FILE=L1,L2,...  program + its target labels (repeatable)
///     --clients N        concurrent client connections (default 4)
///     --requests M       requests per client (default 16)
///     --rate R           open-loop arrival rate in req/s across all
///                        clients (default: closed loop, back-to-back)
///     --engine NAME      per-request engine override
///     --witness          request counterexample traces
///     --timeout-ms N     per-request `timeout_ms` deadline; rows the
///                        server stops at the limit are counted as
///                        timeouts (not errors, not drift) and reported
///     --retries N        bounded retry budget per connect/request
///                        failure, with exponential backoff (default 3)
///     --json PATH        write a BENCH_server.json report (bench row
///                        schema: per-target verdict rows keyed
///                        section/case/variant plus summary rows)
///     --verdicts PATH    write sorted "program label verdict" lines (CI
///                        diffs these against the offline getafix tool)
///     --emit-workloads DIR
///                        generate the labeled serving workloads
///                        (terminator + bluetooth) into DIR, print one
///                        "path label,label,..." manifest line per
///                        program, and exit — no server needed
///
/// Each client cycles through the programs; every fourth request sends
/// the program's full target batch (exercising the server's `solveAll`
/// path), the others a single rotating target. Verdicts observed by
/// different clients for the same (program, target) are checked for
/// consistency — any disagreement is a pooling bug and exits nonzero.
///
//===----------------------------------------------------------------------===//

#include "gen/Workloads.h"
#include "server/Protocol.h"
#include "support/Socket.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace getafix;

namespace {

struct ProgramSpec {
  std::string Path;
  std::vector<std::string> Targets;
};

struct CliOptions {
  std::string Host = "127.0.0.1";
  unsigned Port = 0;
  std::string UnixPath;
  std::vector<ProgramSpec> Programs;
  unsigned Clients = 4;
  unsigned Requests = 16;
  double Rate = 0.0; ///< 0 = closed loop.
  std::string Engine;
  bool Witness = false;
  uint64_t TimeoutMs = 0; ///< Per-request deadline; 0 = none.
  unsigned Retries = 3;   ///< Retry budget per failed connect/request.
  std::string JsonPath;
  std::string VerdictsPath;
  std::string EmitDir;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: getafix_load (--port N [--host H] | --socket PATH)\n"
      "                    --program FILE=L1,L2,... [--program ...]\n"
      "                    [--clients N] [--requests M] [--rate R]\n"
      "                    [--engine NAME] [--witness]\n"
      "                    [--timeout-ms N] [--retries N]\n"
      "                    [--json PATH] [--verdicts PATH]\n"
      "       getafix_load --emit-workloads DIR\n");
  return 2;
}

/// One observed verdict, with the solver-side seconds of the last
/// observation (for the bench report).
struct Observation {
  std::string Verdict;
  double SolverSeconds = 0.0;
  uint64_t Count = 0;
};

struct SharedResults {
  std::mutex Mu;
  std::vector<double> LatenciesMs;
  std::map<std::pair<std::string, std::string>, Observation> Verdicts;
  uint64_t Requests = 0;
  uint64_t TargetRows = 0;
  uint64_t Errors = 0;
  uint64_t Retries = 0;     ///< Connect/request attempts that were retried.
  uint64_t TimeoutRows = 0; ///< Rows the server stopped at a resource limit.
  bool Inconsistent = false;
  std::string FirstError;

  void noteError(const std::string &E) {
    std::lock_guard<std::mutex> G(Mu);
    ++Errors;
    if (FirstError.empty())
      FirstError = E;
  }

  void noteRetry() {
    std::lock_guard<std::mutex> G(Mu);
    ++Retries;
  }
};

/// A row the server stopped at its resource envelope rather than solved.
/// Expected under deadline-driven load, so excluded from the cross-client
/// verdict-drift check (whether a given row trips is timing-dependent).
bool isLimitRow(const server::Json &Row) {
  const server::Json *Status = Row.find("status");
  if (!Status || !Status->isString())
    return false;
  const std::string &S = Status->asString();
  return S == "hit_deadline" || S == "hit_node_budget" || S == "cancelled";
}

server::Json buildSolveRequest(const CliOptions &Opts, const ProgramSpec &P,
                               const std::vector<std::string> &Targets) {
  server::Json Req = server::Json::object()
                         .set("op", server::Json::str("solve"))
                         .set("program", server::Json::str(P.Path));
  server::Json Ts = server::Json::array();
  for (const std::string &T : Targets)
    Ts.add(server::Json::str(T));
  Req.set("targets", std::move(Ts));
  if (Opts.Witness)
    Req.set("witness", server::Json::boolean(true));
  if (!Opts.Engine.empty())
    Req.set("engine", server::Json::str(Opts.Engine));
  if (Opts.TimeoutMs != 0)
    Req.set("timeout_ms", server::Json::number(double(Opts.TimeoutMs)));
  return Req;
}

support::Socket connectServer(const CliOptions &Opts, std::string &Error) {
  if (!Opts.UnixPath.empty())
    return support::connectUnix(Opts.UnixPath, &Error);
  return support::connectTcp(Opts.Host, Opts.Port, &Error);
}

/// Sends one request line and decodes the one response line.
bool roundTrip(support::Socket &Conn, support::LineReader &Reader,
               const server::Json &Req, server::Json &Resp,
               std::string &Error) {
  if (!support::writeAll(Conn.fd(), Req.dump() + "\n", &Error))
    return false;
  std::string Line;
  support::LineReader::Status St = Reader.readLine(Line, -1);
  if (St != support::LineReader::Status::Line) {
    Error = "connection closed mid-request";
    return false;
  }
  if (!server::Json::parse(Line, Resp, Error)) {
    Error = "bad response JSON: " + Error;
    return false;
  }
  return true;
}

void clientLoop(const CliOptions &Opts, unsigned ClientIdx,
                SharedResults &Results) {
  std::string Error;
  support::Socket Conn;
  std::unique_ptr<support::LineReader> Reader;

  // Bounded exponential backoff: 50ms doubling per attempt. A daemon
  // mid-restart or a dropped connection is a retry, not a run failure.
  auto backoff = [](unsigned Attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50u << Attempt));
  };
  auto connectWithRetry = [&]() -> bool {
    for (unsigned A = 0;; ++A) {
      Conn = connectServer(Opts, Error);
      if (Conn.valid()) {
        Reader.reset(new support::LineReader(Conn.fd()));
        return true;
      }
      if (A >= Opts.Retries)
        return false;
      Results.noteRetry();
      backoff(A);
    }
  };

  if (!connectWithRetry()) {
    Results.noteError("client " + std::to_string(ClientIdx) +
                      ": " + Error);
    return;
  }

  auto Start = std::chrono::steady_clock::now();
  for (unsigned R = 0; R < Opts.Requests; ++R) {
    // Open loop: pace request R of this client at its scheduled arrival
    // time; closed loop sends back-to-back.
    if (Opts.Rate > 0.0) {
      double PerClientRate = Opts.Rate / double(Opts.Clients);
      auto Due = Start + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(
                                 double(R) / PerClientRate));
      std::this_thread::sleep_until(Due);
    }

    // Program rotation is offset per client so concurrent clients hit
    // both the same and different programs over the run.
    const ProgramSpec &P =
        Opts.Programs[(R + ClientIdx) % Opts.Programs.size()];
    std::vector<std::string> Targets;
    if (R % 4 == 0) {
      Targets = P.Targets; // Full batch through the server's solveAll.
    } else {
      Targets.push_back(
          P.Targets[(R + ClientIdx) % P.Targets.size()]);
    }

    server::Json Req = buildSolveRequest(Opts, P, Targets);
    server::Json Resp;
    auto T0 = std::chrono::steady_clock::now();
    bool Sent = false;
    for (unsigned A = 0;; ++A) {
      if (roundTrip(Conn, *Reader, Req, Resp, Error)) {
        Sent = true;
        break;
      }
      if (A >= Opts.Retries)
        break;
      Results.noteRetry();
      backoff(A);
      // The connection may be dead (daemon restart, dropped peer);
      // reconnect before the next attempt, spending the same budget.
      if (!connectWithRetry())
        break;
    }
    if (!Sent) {
      Results.noteError("client " + std::to_string(ClientIdx) + ": " +
                        Error);
      return;
    }
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - T0)
                    .count();

    const server::Json *Ok = Resp.find("ok");
    if (!Ok || !Ok->isBool() || !Ok->asBool()) {
      const server::Json *E = Resp.find("error");
      Results.noteError("server error: " +
                        (E && E->isString() ? E->asString()
                                            : std::string("(unknown)")));
      continue;
    }

    std::lock_guard<std::mutex> G(Results.Mu);
    Results.LatenciesMs.push_back(Ms);
    ++Results.Requests;
    const server::Json *Rows = Resp.find("rows");
    if (!Rows || !Rows->isArray())
      continue;
    for (const server::Json &Row : Rows->items()) {
      const server::Json *Target = Row.find("target");
      if (!Target || !Target->isString())
        continue;
      ++Results.TargetRows;
      if (isLimitRow(Row)) {
        ++Results.TimeoutRows;
        continue;
      }
      const server::Json *Verdict = Row.find("verdict");
      const server::Json *RowErr = Row.find("error");
      std::string V = Verdict && Verdict->isString()
                          ? Verdict->asString()
                          : "ERROR:" + (RowErr && RowErr->isString()
                                            ? RowErr->asString()
                                            : std::string("?"));
      auto Key = std::make_pair(P.Path, Target->asString());
      auto It = Results.Verdicts.find(Key);
      if (It == Results.Verdicts.end()) {
        Observation O;
        O.Verdict = V;
        const server::Json *Secs = Row.find("seconds");
        O.SolverSeconds = Secs && Secs->isNumber() ? Secs->asNumber() : 0.0;
        O.Count = 1;
        Results.Verdicts.emplace(std::move(Key), std::move(O));
      } else {
        ++It->second.Count;
        if (It->second.Verdict != V) {
          // Two clients saw different verdicts for the same target —
          // the pooled session leaked state between programs.
          Results.Inconsistent = true;
          if (Results.FirstError.empty())
            Results.FirstError = "verdict drift on " + P.Path + " " +
                                 Target->asString() + ": '" +
                                 It->second.Verdict + "' vs '" + V + "'";
        }
      }
    }
  }
}

double percentile(std::vector<double> Sorted, double Q) {
  if (Sorted.empty())
    return 0.0;
  size_t Idx = size_t(Q * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

std::string baseName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? Path : Path.substr(Slash + 1);
}

/// Final `stats` verb on a fresh connection; best-effort (zeros on
/// failure).
bool fetchServerStats(const CliOptions &Opts, server::Json &Out) {
  std::string Error;
  support::Socket Conn = connectServer(Opts, Error);
  if (!Conn.valid())
    return false;
  support::LineReader Reader(Conn.fd());
  server::Json Req =
      server::Json::object().set("op", server::Json::str("stats"));
  return roundTrip(Conn, Reader, Req, Out, Error);
}

double poolCounter(const server::Json &Stats, const char *Name) {
  const server::Json *Pool = Stats.find("pool");
  if (!Pool)
    return 0.0;
  const server::Json *V = Pool->find(Name);
  return V && V->isNumber() ? V->asNumber() : 0.0;
}

int emitWorkloads(const std::string &Dir) {
  // The serving workload pair: one sequential TERMINATOR-shaped program
  // and one concurrent bluetooth model, each with >= 8 target labels of
  // mixed verdicts. Kept small enough for CI smoke runs.
  gen::TerminatorParams TP;
  TP.CounterBits = 6;
  TP.NumDeadVars = 4;
  TP.Style = gen::DeadVarStyle::Schoose;
  TP.Reachable = false;
  TP.LabeledCheckpoints = 4;
  gen::Workload T = gen::terminatorProgram(TP);

  std::string Bt = gen::bluetoothModel(1, 1, /*Labeled=*/true);

  struct Out {
    const char *File;
    const std::string &Source;
    std::vector<std::string> Targets;
  } Outs[] = {
      {"terminator.bp", T.Source,
       {"CP0", "CP1", "CP2", "CP3", "DEAD0", "DEAD1", "DEAD2", "DEAD3",
        "ERR"}},
      {"bluetooth.bp", Bt,
       {"INIT_A0", "OK_A0", "DEC_A0", "DEAD_A0", "STOP_S0", "DONE_S0",
        "DEAD_S0", "ERR"}},
  };

  for (const Out &O : Outs) {
    std::string Path = Dir + "/" + O.File;
    std::ofstream F(Path);
    if (!F) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
      return 2;
    }
    F << O.Source;
    F.close();
    std::string Labels;
    for (const std::string &L : O.Targets)
      Labels += (Labels.empty() ? "" : ",") + L;
    std::printf("%s %s\n", Path.c_str(), Labels.c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *V;
    if (Arg == "--host") {
      if (!(V = Next()))
        return usage();
      Opts.Host = V;
    } else if (Arg == "--port") {
      if (!(V = Next()))
        return usage();
      Opts.Port = unsigned(std::atoi(V));
    } else if (Arg == "--socket") {
      if (!(V = Next()))
        return usage();
      Opts.UnixPath = V;
    } else if (Arg == "--program") {
      if (!(V = Next()))
        return usage();
      std::string Spec = V;
      size_t Eq = Spec.find('=');
      if (Eq == std::string::npos || Eq == 0 || Eq + 1 >= Spec.size())
        return usage();
      ProgramSpec P;
      P.Path = Spec.substr(0, Eq);
      std::string Labels = Spec.substr(Eq + 1);
      size_t Pos = 0;
      while (Pos <= Labels.size()) {
        size_t Comma = Labels.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = Labels.size();
        if (Comma > Pos)
          P.Targets.push_back(Labels.substr(Pos, Comma - Pos));
        Pos = Comma + 1;
      }
      if (P.Targets.empty())
        return usage();
      Opts.Programs.push_back(std::move(P));
    } else if (Arg == "--clients") {
      if (!(V = Next()))
        return usage();
      int N = std::atoi(V);
      if (N < 1 || N > 256)
        return usage();
      Opts.Clients = unsigned(N);
    } else if (Arg == "--requests") {
      if (!(V = Next()))
        return usage();
      int N = std::atoi(V);
      if (N < 1)
        return usage();
      Opts.Requests = unsigned(N);
    } else if (Arg == "--rate") {
      if (!(V = Next()))
        return usage();
      Opts.Rate = std::atof(V);
    } else if (Arg == "--engine") {
      if (!(V = Next()))
        return usage();
      Opts.Engine = V;
    } else if (Arg == "--witness") {
      Opts.Witness = true;
    } else if (Arg == "--timeout-ms") {
      if (!(V = Next()))
        return usage();
      Opts.TimeoutMs = uint64_t(std::atoll(V));
    } else if (Arg == "--retries") {
      if (!(V = Next()))
        return usage();
      int N = std::atoi(V);
      if (N < 0 || N > 16)
        return usage();
      Opts.Retries = unsigned(N);
    } else if (Arg == "--json") {
      if (!(V = Next()))
        return usage();
      Opts.JsonPath = V;
    } else if (Arg == "--verdicts") {
      if (!(V = Next()))
        return usage();
      Opts.VerdictsPath = V;
    } else if (Arg == "--emit-workloads") {
      if (!(V = Next()))
        return usage();
      Opts.EmitDir = V;
    } else {
      return usage();
    }
  }

  if (!Opts.EmitDir.empty())
    return emitWorkloads(Opts.EmitDir);
  if (Opts.Programs.empty() || (Opts.Port == 0 && Opts.UnixPath.empty()))
    return usage();

  SharedResults Results;
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Clients;
  Clients.reserve(Opts.Clients);
  for (unsigned C = 0; C < Opts.Clients; ++C)
    Clients.emplace_back(
        [&Opts, C, &Results] { clientLoop(Opts, C, Results); });
  for (std::thread &T : Clients)
    T.join();
  double WallSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - Start)
                           .count();

  std::sort(Results.LatenciesMs.begin(), Results.LatenciesMs.end());
  double P50 = percentile(Results.LatenciesMs, 0.50);
  double P95 = percentile(Results.LatenciesMs, 0.95);
  double P99 = percentile(Results.LatenciesMs, 0.99);
  double Throughput =
      WallSeconds > 0.0 ? double(Results.Requests) / WallSeconds : 0.0;

  server::Json ServerStats;
  bool HaveStats = fetchServerStats(Opts, ServerStats);

  std::printf("requests %llu  targets %llu  errors %llu  retries %llu  "
              "timeouts %llu\n",
              (unsigned long long)Results.Requests,
              (unsigned long long)Results.TargetRows,
              (unsigned long long)Results.Errors,
              (unsigned long long)Results.Retries,
              (unsigned long long)Results.TimeoutRows);
  std::printf("latency ms  p50 %.3f  p95 %.3f  p99 %.3f\n", P50, P95, P99);
  std::printf("throughput %.1f req/s over %.2f s\n", Throughput,
              WallSeconds);
  if (HaveStats)
    std::printf("pool  hits %.0f  opens %.0f  reopens %.0f  "
                "cache-clears %.0f  evictions %.0f  resident %.0f\n",
                poolCounter(ServerStats, "hits"),
                poolCounter(ServerStats, "opens"),
                poolCounter(ServerStats, "reopens"),
                poolCounter(ServerStats, "cache_clears"),
                poolCounter(ServerStats, "evictions"),
                poolCounter(ServerStats, "resident_sessions"));

  // "program label verdict" lines, sorted (std::map iteration), for the
  // CI diff against the offline tool.
  if (!Opts.VerdictsPath.empty()) {
    std::ofstream VF(Opts.VerdictsPath);
    if (!VF) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.VerdictsPath.c_str());
      return 2;
    }
    for (const auto &KV : Results.Verdicts)
      VF << baseName(KV.first.first) << " " << KV.first.second << " "
         << KV.second.Verdict << "\n";
  }

  if (!Opts.JsonPath.empty()) {
    // Hand-rolled flat-row report matching bench/BenchUtil.h's JsonReport
    // format ({"rows": [...]}) so bench/check_trajectory.py can ingest
    // it: per-target verdict rows plus latency/pool summary rows.
    std::ofstream JF(Opts.JsonPath);
    if (!JF) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.JsonPath.c_str());
      return 2;
    }
    std::string Rows;
    auto AddRow = [&Rows](const server::Json &Row) {
      Rows += Rows.empty() ? "  " : ",\n  ";
      Rows += Row.dump();
    };
    for (const auto &KV : Results.Verdicts) {
      bool IsError = KV.second.Verdict.rfind("ERROR:", 0) == 0;
      server::Json Row =
          server::Json::object()
              .set("section", server::Json::str("server"))
              .set("case", server::Json::str(baseName(KV.first.first)))
              .set("variant", server::Json::str(KV.first.second))
              .set("verdict", server::Json::str(KV.second.Verdict))
              .set("reachable",
                   server::Json::boolean(KV.second.Verdict == "YES"))
              .set("error", server::Json::boolean(IsError))
              .set("observations",
                   server::Json::number(double(KV.second.Count)))
              .set("seconds",
                   server::Json::number(KV.second.SolverSeconds));
      AddRow(Row);
    }
    server::Json Latency =
        server::Json::object()
            .set("section", server::Json::str("server"))
            .set("case", server::Json::str("summary"))
            .set("variant", server::Json::str("latency"))
            .set("clients", server::Json::number(double(Opts.Clients)))
            .set("requests", server::Json::number(double(Results.Requests)))
            .set("errors", server::Json::number(double(Results.Errors)))
            .set("retries", server::Json::number(double(Results.Retries)))
            .set("timeout_rows",
                 server::Json::number(double(Results.TimeoutRows)))
            .set("timeout_ms",
                 server::Json::number(double(Opts.TimeoutMs)))
            .set("p50_ms", server::Json::number(P50))
            .set("p95_ms", server::Json::number(P95))
            .set("p99_ms", server::Json::number(P99))
            .set("throughput_rps", server::Json::number(Throughput))
            .set("seconds", server::Json::number(WallSeconds));
    AddRow(Latency);
    if (HaveStats) {
      server::Json Pool =
          server::Json::object()
              .set("section", server::Json::str("server"))
              .set("case", server::Json::str("summary"))
              .set("variant", server::Json::str("pool"))
              .set("lookups",
                   server::Json::number(poolCounter(ServerStats, "lookups")))
              .set("hits",
                   server::Json::number(poolCounter(ServerStats, "hits")))
              .set("opens",
                   server::Json::number(poolCounter(ServerStats, "opens")))
              .set("reopens",
                   server::Json::number(poolCounter(ServerStats, "reopens")))
              .set("cache_clears",
                   server::Json::number(
                       poolCounter(ServerStats, "cache_clears")))
              .set("evictions",
                   server::Json::number(
                       poolCounter(ServerStats, "evictions")))
              .set("footprint_bytes",
                   server::Json::number(
                       poolCounter(ServerStats, "footprint_bytes")))
              .set("seconds", server::Json::number(0.0));
      AddRow(Pool);
    }
    JF << "{\"rows\": [\n" << Rows << "\n]}\n";
  }

  if (Results.Inconsistent || !Results.FirstError.empty()) {
    std::fprintf(stderr, "error: %s\n", Results.FirstError.c_str());
    return 2;
  }
  return 0;
}
