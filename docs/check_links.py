#!/usr/bin/env python3
"""Link and source-anchor checker for the repo documentation.

Scans README.md, ROADMAP.md, and docs/*.md for

  1. relative markdown links `[text](path)` whose target file does not
     exist (external http(s)/mailto links and pure #fragments are
     skipped), and
  2. stale source anchors: inline-code references like
     `src/reach/SeqReach.cpp:123` whose file is missing or whose line
     number is past the end of the file. Only paths under the known
     top-level directories (src/, tools/, tests/, bench/, docs/,
     .github/) and the well-known root files are treated as anchors, so
     prose mentioning hypothetical files stays legal.

Exits 1 with one line per problem — CI runs this on every push so the
architecture docs cannot silently rot as the code moves underneath them.
"""

import glob
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = sorted(
    glob.glob(os.path.join(REPO, "docs", "*.md"))
    + [os.path.join(REPO, "README.md"), os.path.join(REPO, "ROADMAP.md")]
)

# Markdown inline links: [text](target). Images share the syntax.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# Inline-code source anchors: `path/to/file.ext` or `path/to/file.ext:123`.
ANCHOR_RE = re.compile(
    r"`([A-Za-z0-9_./-]+\.(?:h|cpp|py|md|txt|yml|json|cmake))(?::(\d+))?`"
)

# Prefixes/names that make a backticked path a checkable repo anchor.
ANCHOR_PREFIXES = ("src/", "tools/", "tests/", "bench/", "docs/", ".github/")
ANCHOR_ROOT_FILES = {
    "README.md",
    "ROADMAP.md",
    "PAPER.md",
    "PAPERS.md",
    "CHANGES.md",
    "CMakeLists.txt",
}


def line_count(path, cache={}):
    if path not in cache:
        with open(path, "rb") as f:
            cache[path] = f.read().count(b"\n") + 1
    return cache[path]


def main():
    problems = []
    for doc in DOC_FILES:
        rel_doc = os.path.relpath(doc, REPO)
        if not os.path.exists(doc):
            problems.append(f"{rel_doc}: listed doc file is missing")
            continue
        with open(doc, encoding="utf-8") as f:
            lines = f.readlines()
        for lineno, line in enumerate(lines, 1):
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(doc), path)
                )
                if not os.path.exists(resolved):
                    problems.append(
                        f"{rel_doc}:{lineno}: dead link '{target}'"
                    )
            for m in ANCHOR_RE.finditer(line):
                path, anchor_line = m.group(1), m.group(2)
                if not (
                    path.startswith(ANCHOR_PREFIXES)
                    or path in ANCHOR_ROOT_FILES
                ):
                    continue
                resolved = os.path.join(REPO, path)
                if not os.path.exists(resolved):
                    problems.append(
                        f"{rel_doc}:{lineno}: stale anchor '{path}' "
                        "(file does not exist)"
                    )
                elif anchor_line is not None:
                    n = line_count(resolved)
                    if int(anchor_line) > n:
                        problems.append(
                            f"{rel_doc}:{lineno}: stale anchor "
                            f"'{path}:{anchor_line}' (file has {n} lines)"
                        )

    for p in problems:
        print(p)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"checked {len(DOC_FILES)} docs: all links and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
