//===- Parallel.cpp - Dependency-respecting parallel execution ------------===//

#include "fpcalc/Parallel.h"

#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

using namespace getafix;
using namespace getafix::fpc;

namespace {

/// Shared state of one DAG run, shared with the task closures via
/// shared_ptr. Note this does NOT make early exit from `runDag` safe:
/// the closures also capture the caller's `Run` and the local `Submit`
/// by reference, so the frame must stay alive until every task drains —
/// which it does, because the runner always joins on `Remaining` before
/// returning. The shared_ptr only keeps the *bookkeeping* valid through
/// the tail of the final task's completion handler.
struct DagState {
  std::mutex Mutex;
  std::condition_variable Done;
  std::vector<unsigned> Waiting;             ///< Unmet dependency counts.
  std::vector<std::vector<unsigned>> Dependents; ///< Reverse edges.
  unsigned Remaining = 0;
  /// Tasks submitted but not yet completed. When a completing task finds
  /// Remaining > 0, unblocked nothing, and was the last one in flight,
  /// no task can ever run again — a cycle disjoint from the sources.
  unsigned InFlight = 0;
};

} // namespace

DagRunStats fpc::runDag(
    support::ThreadPool &Pool, unsigned NumTasks,
    const std::vector<std::vector<unsigned>> &Deps,
    const std::function<void(unsigned Task, unsigned Worker)> &Run) {
  assert(Deps.size() == NumTasks && "one dependency list per task");
  DagRunStats Stats;
  Stats.TasksRun = NumTasks;
  if (NumTasks == 0)
    return Stats;
  uint64_t StealsBefore = Pool.steals();

  auto St = std::make_shared<DagState>();
  St->Waiting.resize(NumTasks, 0);
  St->Dependents.resize(NumTasks);
  St->Remaining = NumTasks;
  for (unsigned T = 0; T < NumTasks; ++T) {
    St->Waiting[T] = unsigned(Deps[T].size());
    for (unsigned D : Deps[T]) {
      assert(D < NumTasks && "dependency out of range");
      St->Dependents[D].push_back(T);
    }
  }

  // `submit` is recursive through the completion handler: finishing a task
  // submits every dependent it unblocked.
  std::function<void(unsigned)> Submit = [&, St](unsigned T) {
    Pool.run([&, St, T](unsigned Worker) {
      try {
        Run(T, Worker);
      } catch (const std::exception &E) {
        // An exception would otherwise unwind into the pool's worker loop
        // and std::terminate with no context; fail loudly instead (the
        // DAG cannot be completed — dependents of T must not run).
        std::fprintf(stderr, "fpc::runDag: task %u failed: %s\n", T,
                     E.what());
        std::abort();
      } catch (...) {
        std::fprintf(stderr, "fpc::runDag: task %u failed\n", T);
        std::abort();
      }
      std::vector<unsigned> Ready;
      bool Stuck = false;
      {
        std::lock_guard<std::mutex> Lock(St->Mutex);
        for (unsigned Dep : St->Dependents[T])
          if (--St->Waiting[Dep] == 0)
            Ready.push_back(Dep);
        // The unblocked dependents join InFlight *here*, in the same
        // critical section that retires this task — a sibling completing
        // between this unlock and the actual re-submissions must still
        // see them accounted for, or it could observe a transient
        // InFlight == 0 on a perfectly progressing run.
        St->InFlight += unsigned(Ready.size());
        --St->InFlight;
        if (--St->Remaining == 0)
          St->Done.notify_all();
        // Stall detection: nothing running, nothing about to run, work
        // left — the remaining tasks can only be a cycle (submissions
        // only come from completion handlers, and none will run again).
        Stuck = St->Remaining > 0 && St->InFlight == 0;
      }
      if (Stuck) {
        std::fprintf(stderr,
                     "fpc::runDag: tasks unreachable from any source "
                     "(cycle); aborting instead of hanging\n");
        std::abort();
      }
      for (unsigned R : Ready)
        Submit(R);
    });
  };

  // Collect every source *before* submitting any: a submitted task may
  // complete (and decrement dependents' wait counts) while this loop is
  // still scanning, so reading Waiting here after a Submit would race.
  std::vector<unsigned> Seeds;
  for (unsigned T = 0; T < NumTasks; ++T)
    if (St->Waiting[T] == 0)
      Seeds.push_back(T);
  if (Seeds.empty()) {
    // A sourceless graph is a cycle; waiting on it would hang the whole
    // solver forever, silently, in exactly the NDEBUG builds users run —
    // so this stays a hard failure in every configuration.
    std::fprintf(stderr,
                 "fpc::runDag: dependency graph of %u tasks has no "
                 "source (cycle)\n",
                 NumTasks);
    std::abort();
  }
  St->InFlight = unsigned(Seeds.size());
  for (unsigned T : Seeds)
    Submit(T);

  {
    std::unique_lock<std::mutex> Lock(St->Mutex);
    St->Done.wait(Lock, [&] { return St->Remaining == 0; });
  }
  Stats.Steals = Pool.steals() - StealsBefore;
  return Stats;
}
