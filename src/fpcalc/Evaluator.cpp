//===- Evaluator.cpp - Symbolic fixed-point evaluation --------------------===//

#include "fpcalc/Evaluator.h"

#include "fpcalc/Parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <set>

using namespace getafix;
using namespace getafix::fpc;

//===----------------------------------------------------------------------===//
// Parallel context: worker pool + per-worker BDD managers
//===----------------------------------------------------------------------===//

namespace getafix {
namespace fpc {

/// One worker's private solving state: a BDD manager sharing the main
/// manager's variable order and cache geometry, an evaluator over the same
/// system/layout, and the two cached cross-manager importers (main->worker
/// for inputs and seeded dependencies, worker->main for solved SCC
/// values). Owned by exactly one pool worker — only the main-manager
/// touches (both importers' main side) need the scheduler's lock.
struct WorkerContext {
  BddManager Mgr;
  Evaluator Ev;
  BddImporter In;  ///< Main -> worker.
  BddImporter Out; ///< Worker -> main.

  WorkerContext(const System &Sys, BddManager &Main, const Layout &L,
                EvalStrategy Strategy, CofactorMode Cofactor,
                unsigned CacheBits)
      : Mgr(Main.numVars(), CacheBits, Main.cacheWays()),
        Ev(Sys, Mgr, L, Strategy, Cofactor), In(Main, Mgr), Out(Mgr, Main) {
    Mgr.setGcThreshold(Main.gcThreshold());
  }
};

struct ParallelContext {
  std::vector<std::unique_ptr<WorkerContext>> Workers;
  /// Serializes every main-manager access during a parallel schedule:
  /// imports of inputs/dependencies, exports of solved values, and the
  /// shared solved-value map (main-manager `Bdd` handles mutate external
  /// refcounts even when copied, so handle lifetime is locked too).
  std::mutex MainLock;
  /// Last member on purpose: destroyed *first*, so the pool stops and
  /// joins its threads while the worker contexts (and this struct's
  /// other members) any in-flight task touches are still alive. Today
  /// runDag always drains before returning, but destruction order is
  /// the cheap armor against a future early-exit path.
  support::ThreadPool Pool;

  explicit ParallelContext(unsigned Threads) : Pool(Threads) {}
};

} // namespace fpc
} // namespace getafix

//===----------------------------------------------------------------------===//
// Layout
//===----------------------------------------------------------------------===//

Layout Layout::sequential(const System &Sys, BddManager &Mgr) {
  Layout L;
  L.Bits.resize(Sys.numVars());
  for (VarId V = 0; V < Sys.numVars(); ++V) {
    unsigned NumBits = Sys.domain(Sys.var(V).Dom).numBits();
    for (unsigned B = 0; B < NumBits; ++B)
      L.Bits[V].push_back(Mgr.newVar());
  }
  return L;
}

Layout Layout::interleaved(const System &Sys, BddManager &Mgr,
                           const std::vector<std::vector<VarId>> &Groups) {
  Layout L;
  L.Bits.resize(Sys.numVars());
  for (const std::vector<VarId> &Group : Groups) {
    assert(!Group.empty() && "empty layout group");
    unsigned NumBits = Sys.domain(Sys.var(Group.front()).Dom).numBits();
#ifndef NDEBUG
    for (VarId V : Group) {
      assert(Sys.domain(Sys.var(V).Dom).numBits() == NumBits &&
             "layout group members must share a domain width");
      assert(L.Bits[V].empty() && "variable allocated twice");
    }
#endif
    // Bit-major: bit 0 of every copy, then bit 1 of every copy, ...
    for (unsigned B = 0; B < NumBits; ++B)
      for (VarId V : Group)
        L.Bits[V].push_back(Mgr.newVar());
  }
  for (VarId V = 0; V < Sys.numVars(); ++V) {
    if (!L.Bits[V].empty())
      continue;
    unsigned NumBits = Sys.domain(Sys.var(V).Dom).numBits();
    for (unsigned B = 0; B < NumBits; ++B)
      L.Bits[V].push_back(Mgr.newVar());
  }
  return L;
}

//===----------------------------------------------------------------------===//
// Evaluator: setup and encoding helpers
//===----------------------------------------------------------------------===//

Evaluator::Evaluator(const System &Sys, BddManager &Mgr, Layout L,
                     EvalStrategy Strategy, CofactorMode Cofactor)
    : Sys(Sys), Mgr(Mgr), L(std::move(L)), Strategy(Strategy),
      Cofactor(Cofactor) {}

// Out-of-line: ParallelContext is incomplete in the header.
Evaluator::~Evaluator() = default;

void Evaluator::setThreads(unsigned N) {
  if (N == 0)
    N = 1;
  if (N == Threads)
    return;
  Threads = N;
  ParStats.Threads = N;
  // A differently-sized pool is rebuilt lazily on the next parallel
  // schedule; dropping it here keeps exactly one set of worker managers
  // alive. Their counters retire into the accumulator so
  // `workerBddStats()` stays monotone across pool rebuilds (callers
  // subtract snapshots via BddStats::since).
  if (Par) {
    for (const std::unique_ptr<WorkerContext> &W : Par->Workers)
      if (W)
        RetiredWorkerBdd.merge(W->Mgr.stats());
    Par.reset();
  }
}

void Evaluator::ensureParallelContext() {
  if (Par)
    return;
  Par = std::make_unique<ParallelContext>(Threads);
  // One slot per pool worker; the contexts themselves (each a BDD
  // manager with a main-sized computed cache — megabytes) are built
  // lazily by the worker that first receives a task, so `--threads 64`
  // on a three-SCC system pays for three managers, not 64. A slot is
  // only ever touched by its owning worker, so creation needs no lock.
  Par->Workers.resize(Threads);
}

WorkerContext &Evaluator::workerContext(unsigned Worker) {
  std::unique_ptr<WorkerContext> &Slot = Par->Workers[Worker];
  if (!Slot) {
    // Clone the main manager's cache geometry so the frontier-width
    // policy (keyed on cacheSlots) behaves the same way per worker. The
    // main-manager reads here (numVars, cache geometry, gc threshold)
    // are all fields no concurrent import/export mutates.
    unsigned CacheBits = 0;
    while ((size_t(1) << CacheBits) < Mgr.cacheSlots())
      ++CacheBits;
    Slot = std::make_unique<WorkerContext>(Sys, Mgr, L, Strategy, Cofactor,
                                           CacheBits);
  }
  return *Slot;
}

BddStats Evaluator::workerBddStats() const {
  BddStats S = RetiredWorkerBdd;
  if (!Par)
    return S;
  for (const std::unique_ptr<WorkerContext> &W : Par->Workers)
    if (W)
      S.merge(W->Mgr.stats());
  return S;
}

void Evaluator::bindInput(RelId Rel, Bdd Value) {
  assert(Sys.relation(Rel).isInput() && "binding a defined relation");
  assert(InFlight.empty() && "rebinding an input mid-evaluation");
  auto [It, Inserted] = Inputs.emplace(Rel, Value);
  if (!Inserted) {
    if (It->second == Value)
      return; // Same binding: every memo is still valid.
    It->second = std::move(Value);
    // Both memo layers may hold BDDs built from the old binding: the
    // static-subformula cache mentions inputs directly, and a Completed
    // defined relation was solved under them. Serving either after a
    // rebind would silently answer the old query.
    Completed.clear();
    resetWorkerMemos();
  }
  StaticCache.clear(); // Cached composites may mention this relation.
}

void Evaluator::invalidate() {
  Completed.clear();
  StaticCache.clear();
  resetWorkerMemos();
}

void Evaluator::resetWorkerMemos() {
  // The per-worker evaluators persist across schedules, so their memo
  // layers hold values solved under the *previous* bindings. Task seeding
  // refreshes everything a task reads from outside its SCC (inputs and
  // lower-SCC values are re-imported and overwritten every task), but a
  // worker that solved a now-pending member keeps its own solution and
  // would skip the re-solve — serving the old binding's answer. Dropping
  // the workers' memos whenever the main memos drop restores the
  // invariant that a worker Completed entry is never staler than the
  // main one. (No worker can be running here: memo drops happen only
  // from top-level, non-solving entry points.)
  if (!Par)
    return;
  for (std::unique_ptr<WorkerContext> &W : Par->Workers) {
    if (!W)
      continue;
    W->Ev.Inputs.clear();
    W->Ev.Completed.clear();
    W->Ev.StaticCache.clear();
    // The importer memos hold external references on both sides (worker
    // nodes in In, main-manager nodes in Out); translations of values
    // the rebind just invalidated would otherwise pin dead BDDs for the
    // evaluator's lifetime, growing memory with every rebind cycle.
    W->In.clear();
    W->Out.clear();
  }
}

const DependencyGraph &Evaluator::dependencies() {
  if (!Graph)
    Graph = std::make_unique<DependencyGraph>(Sys);
  return *Graph;
}

const EquationPlan &Evaluator::plan(RelId Rel) {
  auto It = Plans.find(Rel);
  if (It == Plans.end())
    It = Plans.emplace(Rel, planEquation(Sys, dependencies(), Rel)).first;
  return It->second;
}

bool Evaluator::isStatic(const Formula &F) {
  auto It = StaticKind.find(&F);
  if (It != StaticKind.end())
    return It->second;
  bool Static = true;
  switch (F.Kind) {
  case FormulaKind::RelApp:
    Static = Sys.relation(F.Rel).isInput();
    break;
  case FormulaKind::Not:
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const Formula *Child : F.Children)
      Static = Static && isStatic(*Child);
    break;
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    Static = isStatic(*F.Body);
    break;
  default:
    break;
  }
  StaticKind.emplace(&F, Static);
  return Static;
}

Bdd Evaluator::bitVar(VarId V, unsigned Bit) {
  const std::vector<unsigned> &Bits = L.bits(V);
  assert(Bit < Bits.size() && "bit index out of range");
  return Mgr.var(Bits[Bit]);
}

Bdd Evaluator::encodeEqConst(VarId V, uint64_t Value) {
  const std::vector<unsigned> &Bits = L.bits(V);
  assert(Value < Sys.domain(Sys.var(V).Dom).Size && "constant out of domain");
  Bdd Result = Mgr.one();
  for (unsigned B = 0; B < Bits.size(); ++B)
    Result &= ((Value >> B) & 1) ? Mgr.var(Bits[B]) : Mgr.nvar(Bits[B]);
  return Result;
}

Bdd Evaluator::encodeEqVar(VarId A, VarId B) {
  assert(Sys.var(A).Dom == Sys.var(B).Dom &&
         "equality between different domains");
  const std::vector<unsigned> &ABits = L.bits(A);
  const std::vector<unsigned> &BBits = L.bits(B);
  Bdd Result = Mgr.one();
  // Conjoin from the highest bit so the result grows bottom-up in the
  // (typically interleaved) order.
  for (size_t I = ABits.size(); I-- > 0;)
    Result &= Mgr.var(ABits[I]).iff(Mgr.var(BBits[I]));
  return Result;
}

Bdd Evaluator::domainConstraint(VarId V) {
  const Domain &D = Sys.domain(Sys.var(V).Dom);
  uint64_t Capacity = uint64_t(1) << L.bits(V).size();
  if (D.Size == Capacity)
    return Mgr.one();
  // V < Size: disjunction over valid values would be linear in Size; use a
  // bitwise comparison against Size-1 instead (V <= Size-1).
  uint64_t Max = D.Size - 1;
  const std::vector<unsigned> &Bits = L.bits(V);
  // lessEq built from msb down: acc(i) = (v_i < m_i) | (v_i == m_i) & acc.
  Bdd Acc = Mgr.one();
  for (size_t I = 0; I < Bits.size(); ++I) {
    bool MaxBit = (Max >> I) & 1;
    Bdd Vi = Mgr.var(Bits[I]);
    if (MaxBit)
      Acc = (!Vi) | Acc;
    else
      Acc = (!Vi) & Acc;
  }
  return Acc;
}

//===----------------------------------------------------------------------===//
// Evaluator: core
//===----------------------------------------------------------------------===//

bool Evaluator::dependsOnInFlight(RelId Rel) const {
  for (const auto &[InFlightRel, Value] : InFlight) {
    (void)Value;
    if (Rel == InFlightRel || Sys.dependsOn(Rel, InFlightRel))
      return true;
  }
  return false;
}

Bdd Evaluator::relValue(RelId Rel) {
  auto FlightIt = InFlight.find(Rel);
  if (FlightIt != InFlight.end())
    return FlightIt->second;

  const Relation &R = Sys.relation(Rel);
  if (R.isInput()) {
    auto It = Inputs.find(Rel);
    assert(It != Inputs.end() && "input relation not bound");
    return It->second;
  }

  // Defined relation used from another definition: per the algorithmic
  // semantics it is re-solved under the current in-flight interpretations.
  // Relations that cannot see any in-flight relation are memoized.
  bool Volatile = dependsOnInFlight(Rel);
  if (!Volatile) {
    auto It = Completed.find(Rel);
    if (It != Completed.end())
      return It->second;
  }
  Bdd Value = evalFixpoint(Rel, nullptr, nullptr, nullptr);
  if (!Volatile)
    Completed[Rel] = Value;
  return Value;
}

Bdd Evaluator::applyArgs(RelId Rel, const std::vector<Term> &Args,
                         Bdd Value) {
  const Relation &R = Sys.relation(Rel);
  assert(Args.size() == R.Formals.size() && "arity mismatch");

  // Constants first: cofactor the formal's bits.
  for (size_t I = 0; I < Args.size(); ++I) {
    if (!Args[I].IsConst)
      continue;
    const std::vector<unsigned> &Bits = L.bits(R.Formals[I]);
    for (unsigned B = 0; B < Bits.size(); ++B)
      Value = Value.restrict(Bits[B], (Args[I].Value >> B) & 1);
  }

  // Then rename formal bits to argument bits (a simultaneous substitution;
  // repeated argument variables like R(u, u) are handled by the rename op).
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I].IsConst)
      continue;
    const std::vector<unsigned> &From = L.bits(R.Formals[I]);
    const std::vector<unsigned> &To = L.bits(Args[I].Variable);
    assert(From.size() == To.size() && "domain width mismatch");
    for (size_t B = 0; B < From.size(); ++B)
      if (From[B] != To[B])
        Pairs.emplace_back(From[B], To[B]);
  }
  if (Pairs.empty())
    return Value;
  return Value.permute(Mgr.makePermutation(Pairs));
}

BddCube Evaluator::cubeFor(const std::vector<VarId> &Bound) {
  std::vector<unsigned> Vars;
  for (VarId V : Bound)
    for (unsigned Bit : L.bits(V))
      Vars.push_back(Bit);
  return Mgr.makeCube(Vars);
}

Bdd Evaluator::evalFormula(const Formula &F) {
  // Composite input-only subtrees are constant; compute them once. Leaves
  // are cheap enough to rebuild (and hit the unique table anyway).
  bool Composite = F.Kind == FormulaKind::Not || F.Kind == FormulaKind::And ||
                   F.Kind == FormulaKind::Or ||
                   F.Kind == FormulaKind::Exists ||
                   F.Kind == FormulaKind::Forall;
  if (Composite && isStatic(F)) {
    auto It = StaticCache.find(&F);
    if (It != StaticCache.end())
      return It->second;
    Bdd Value = evalFormulaUncached(F);
    StaticCache.emplace(&F, Value);
    return Value;
  }
  // Inside a delta round, any subformula off the current occurrence path
  // evaluates under the same environment in every pass (the in-flight S
  // is fixed for the round), so its value is shared across the round's
  // passes. This also holds for applications of nested defined relations:
  // the round-level memo re-solves them once per round, which is the
  // naive scheme's per-round cadence.
  if (InDeltaRound && !Composite && F.Kind != FormulaKind::RelApp)
    return evalFormulaUncached(F);
  if (InDeltaRound && !onDeltaPath(&F)) {
    auto It = RoundCache.find(&F);
    if (It != RoundCache.end())
      return It->second;
    Bdd Value = evalFormulaUncached(F);
    RoundCache.emplace(&F, Value);
    return Value;
  }
  return evalFormulaUncached(F);
}

Bdd Evaluator::evalFormulaUncached(const Formula &F) {
  switch (F.Kind) {
  case FormulaKind::Const:
    return F.ConstValue ? Mgr.one() : Mgr.zero();
  case FormulaKind::RelApp:
    // Semi-naive delta substitution: this one occurrence reads the
    // frontier instead of the full in-flight value.
    if (&F == DeltaApp)
      return applyArgs(F.Rel, F.Args, DeltaValue);
    return applyArgs(F.Rel, F.Args, relValue(F.Rel));
  case FormulaKind::EqVar:
    return encodeEqVar(F.Lhs, F.Rhs);
  case FormulaKind::EqConst:
    return encodeEqConst(F.Lhs, F.Value);
  case FormulaKind::Not:
    return !evalFormula(*F.Children[0]);
  case FormulaKind::And: {
    // Left-to-right: formula authors control conjunction scheduling, which
    // is the point of the Section-4.2 clause-splitting rewrite.
    Bdd Result = evalFormula(*F.Children[0]);
    for (size_t I = 1; I < F.Children.size(); ++I) {
      if (Result.isZero())
        return Result;
      Result &= evalFormula(*F.Children[I]);
    }
    return Result;
  }
  case FormulaKind::Or: {
    // Frontier pass through an on-path Or: only the branch leading to the
    // delta occurrence is live; sibling branches carry either constants
    // (accumulated on round 1) or other occurrences (their own passes).
    if (onDeltaPath(&F)) {
      for (const Formula *Child : F.Children)
        if (onDeltaPath(Child))
          return evalFormula(*Child);
      assert(false && "delta path skips this Or's children");
    }
    Bdd Result = evalFormula(*F.Children[0]);
    for (size_t I = 1; I < F.Children.size(); ++I) {
      if (Result.isOne())
        return Result;
      Result |= evalFormula(*F.Children[I]);
    }
    return Result;
  }
  case FormulaKind::Exists: {
    BddCube Cube = cubeFor(F.Bound);
    const Formula &Body = *F.Body;
    if (Body.Kind == FormulaKind::And && Body.Children.size() >= 2) {
      // Relational-product scheduling: conjoin all but the last child,
      // then fuse the last conjunction with the quantification.
      Bdd Acc = evalFormula(*Body.Children[0]);
      for (size_t I = 1; I + 1 < Body.Children.size(); ++I) {
        if (Acc.isZero())
          return Acc;
        Acc &= evalFormula(*Body.Children[I]);
      }
      if (Acc.isZero())
        return Acc;
      const Formula *LastChild = Body.Children.back();
      Bdd Last = evalFormula(*LastChild);
      // Frontier-aware relational product (Coudert–Madre): in a narrow
      // delta round the conjunct chain holding the Δ occurrence denotes a
      // small care set, so generalized-cofactor the *other* operand —
      // typically the transition/body relation, whose traversal dominates
      // the product — against it first. `f.constrain(c) & c == f & c`
      // makes the product's result bit-identical; only the operand the
      // recursion walks shrinks. Off-path products see the full S on both
      // sides (no narrow care set) and are already deduped per round by
      // the RoundCache, so the extra constrain traversal is not paid
      // there.
      if (Cofactor != CofactorMode::Off && InDeltaRound && onDeltaPath(&F) &&
          !Acc.isConst() && !Last.isConst()) {
        Bdd &Operand = onDeltaPath(LastChild) ? Acc : Last;
        const Bdd &Care = onDeltaPath(LastChild) ? Last : Acc;
        ++CfStats.Applications;
        CfStats.SupportBefore += Operand.support().size();
        Operand = Cofactor == CofactorMode::Constrain
                      ? Operand.constrain(Care)
                      : Operand.restrict(Care);
        CfStats.SupportAfter += Operand.support().size();
      }
      return Acc.andExists(Last, Cube);
    }
    return evalFormula(Body).exists(Cube);
  }
  case FormulaKind::Forall:
    return evalFormula(*F.Body).forall(cubeFor(F.Bound));
  }
  assert(false && "unhandled formula kind");
  return Mgr.zero();
}

void Evaluator::scheduleDependencies(RelId Rel) {
  // Pre-solve the lower SCCs in topological (callees-first) order. Same-SCC
  // members are excluded: they see Rel in flight and must be re-solved per
  // round (the paper's algorithmic semantics). Relations that can see an
  // *outer* in-flight relation stay lazy for the same reason.
  std::vector<RelId> Pending;
  for (RelId T : dependencies().scheduleFor(Rel))
    if (!Completed.count(T) && !dependsOnInFlight(T))
      Pending.push_back(T);
  if (Pending.empty())
    return;
  // Parallel scheduling is a top-level-only move: a nested solve runs
  // inside a worker or inside a caller's round, where the in-flight
  // environment (and the pool itself) is not shareable.
  if (Threads > 1 && InFlight.empty() && Pending.size() > 1 &&
      scheduleDependenciesParallel(Pending))
    return;
  for (RelId T : Pending) {
    // A solve may complete later list entries transitively (nested
    // non-volatile evaluations are memoized); re-check.
    if (Completed.count(T))
      continue;
    Completed[T] = evalFixpoint(T, nullptr, nullptr, nullptr);
  }
}

bool Evaluator::scheduleDependenciesParallel(
    const std::vector<RelId> &Pending) {
  const DependencyGraph &G = dependencies();

  // Group the pending relations into SCC tasks, preserving the
  // callees-first order within each task (members of one SCC are solved
  // sequentially by one worker, in the same order the sequential
  // scheduler uses — the nested re-solve cadence inside an SCC is part of
  // the algorithmic semantics).
  std::vector<unsigned> TaskScc;
  std::map<unsigned, unsigned> TaskOf; ///< Condensation index -> task.
  std::vector<std::vector<RelId>> Members;
  for (RelId T : Pending) {
    auto [It, New] = TaskOf.emplace(G.sccOf(T), unsigned(Members.size()));
    if (New) {
      TaskScc.push_back(G.sccOf(T));
      Members.emplace_back();
    }
    Members[It->second].push_back(T);
  }
  if (Members.size() < 2)
    return false; // A single SCC gains nothing from the pool.

  // Task-level dependency edges, via the members' direct dependencies.
  // Dependencies on SCCs outside the schedule are already Completed and
  // need no edge.
  std::vector<std::vector<unsigned>> Deps(Members.size());
  for (unsigned Task = 0; Task < Members.size(); ++Task) {
    std::set<unsigned> Ds;
    for (RelId M : Members[Task])
      for (RelId D : G.directDeps(M)) {
        auto It = TaskOf.find(G.sccOf(D));
        if (It != TaskOf.end() && It->second != Task)
          Ds.insert(It->second);
      }
    Deps[Task].assign(Ds.begin(), Ds.end());
  }

  ensureParallelContext();
  ParallelContext &PC = *Par;
  const uint64_t ImportsBefore = importerTranslations();

  /// Solved SCC values as main-manager BDDs; written by workers under
  /// MainLock, merged into Completed by this thread after the run.
  std::map<RelId, Bdd> Solved;

  // Containment: runDag's Run must not throw, so each task catches its
  // own failures. A governor trip latches the first limit here (the
  // shared governor then trips the remaining workers at their next
  // probes, draining the fan-out); any other exception is kept and
  // rethrown after the join. Either way the failed task exports nothing.
  std::atomic<int> TrippedLimit{0};
  std::exception_ptr FirstError;
  std::mutex ErrMu;

  DagRunStats DS = runDag(
      PC.Pool, unsigned(Members.size()), Deps,
      [&](unsigned Task, unsigned Worker) {
        WorkerContext &W = workerContext(Worker);
        Evaluator &WE = W.Ev;
        // Re-installed per task: governors are one-shot per solve
        // attempt, and worker contexts persist across solves.
        W.Mgr.setGovernor(Mgr.governor());
        try {

        // What this task needs from outside. Collected over *all* members
        // of the condensation SCC — a member already Completed on the
        // main side is still re-solved nested (volatile) by the worker,
        // so its body's needs count too.
        //
        //   - Every *transitively* reachable lower-SCC defined relation
        //     (the member's own `scheduleFor` closure) is seeded as a
        //     worker Completed value, so the worker's scheduler solves
        //     nothing below this SCC — each such value was either
        //     Completed before the run or produced by an earlier task
        //     (the DAG edges chain transitively, so it is in Solved).
        //   - The inputs the SCC members' bodies apply directly; seeded
        //     dependencies never evaluate their bodies, so deeper inputs
        //     are not needed.
        std::set<RelId> NeedInputs;
        std::set<RelId> NeedDefined;
        for (RelId M : G.sccs()[TaskScc[Task]]) {
          std::vector<RelId> Applied;
          Sys.collectRels(*Sys.relation(M).Def, Applied);
          for (RelId A : Applied)
            if (Sys.relation(A).isInput())
              NeedInputs.insert(A);
          for (RelId D : G.scheduleFor(M))
            NeedDefined.insert(D);
        }
        {
          std::lock_guard<std::mutex> Lock(PC.MainLock);
          for (RelId A : NeedInputs) {
            auto It = Inputs.find(A);
            assert(It != Inputs.end() && "input relation not bound");
            WE.bindInput(A, W.In.import(It->second));
          }
          for (RelId D : NeedDefined) {
            auto SIt = Solved.find(D);
            const Bdd &V =
                SIt != Solved.end() ? SIt->second : Completed.at(D);
            WE.Completed[D] = W.In.import(V);
          }
        }

        // Solve the scheduled members, callees-first, worker-locally.
        for (RelId M : Members[Task])
          if (!WE.Completed.count(M))
            WE.Completed[M] =
                WE.evalFixpoint(M, nullptr, nullptr, nullptr);

        // Export the solved values into the main manager. Canonicity
        // makes each imported BDD bit-identical to what a sequential
        // solve would have stored.
        {
          std::lock_guard<std::mutex> Lock(PC.MainLock);
          for (RelId M : Members[Task])
            Solved[M] = W.Out.import(WE.Completed[M]);
        }
        } catch (const support::ResourceInterrupt &RI) {
          int Expected = 0;
          TrippedLimit.compare_exchange_strong(Expected,
                                               static_cast<int>(RI.Limit));
        } catch (...) {
          std::lock_guard<std::mutex> Lock(ErrMu);
          if (!FirstError)
            FirstError = std::current_exception();
        }
      });

  // Single-threaded from here: fold the run back into the main state.
  // Exported SCC values are complete, valid solutions even when the run
  // as a whole aborted (each is a pure function of its callees), so they
  // are kept — a retry re-derives only what is missing, bit-identically.
  for (auto &[R, V] : Solved)
    Completed[R] = std::move(V);
  ParStats.SccsSolvedParallel += DS.TasksRun;
  ParStats.Steals += DS.Steals;
  ++ParStats.Schedules;
  ParStats.ImportedNodes += importerTranslations() - ImportsBefore;
  mergeWorkerStats();
  // Drop the per-task governor installs before leaving: the governor is
  // owned by this solve attempt and worker managers outlive it.
  for (const std::unique_ptr<WorkerContext> &W : Par->Workers)
    if (W)
      W->Mgr.setGovernor(nullptr);
  if (FirstError)
    std::rethrow_exception(FirstError);
  if (int L = TrippedLimit.load())
    throw support::ResourceInterrupt{static_cast<support::ResourceLimit>(L)};
  return true;
}

uint64_t Evaluator::importerTranslations() const {
  // Workers created during a run start at zero translations, so a
  // before/after delta stays exact even across lazy slot construction.
  uint64_t N = 0;
  if (!Par)
    return N;
  for (const std::unique_ptr<WorkerContext> &W : Par->Workers)
    if (W)
      N += W->In.translations() + W->Out.translations();
  return N;
}

uint64_t Evaluator::workerNodesCreated() const {
  uint64_t N = 0;
  if (!Par)
    return N;
  for (const std::unique_ptr<WorkerContext> &W : Par->Workers)
    if (W)
      N += W->Mgr.stats().NodesCreated;
  return N;
}

void Evaluator::mergeWorkerStats() {
  for (std::unique_ptr<WorkerContext> &WPtr : Par->Workers) {
    if (!WPtr)
      continue;
    Evaluator &WE = WPtr->Ev;
    // Per-relation stats merge (then reset, so the next schedule's merge
    // does not double-count). The parallel totals equal the sequential
    // ones: every scheduled relation runs the same deterministic rounds,
    // wherever it runs.
    for (auto &[Name, RS] : WE.Stats) {
      RelStats &Main = Stats[Name];
      Main.Iterations += RS.Iterations;
      Main.Evaluations += RS.Evaluations;
      Main.DeltaRounds += RS.DeltaRounds;
      if (RS.FinalNodes)
        Main.FinalNodes = RS.FinalNodes;
    }
    WE.Stats.clear();
    CfStats.Applications += WE.CfStats.Applications;
    CfStats.SupportBefore += WE.CfStats.SupportBefore;
    CfStats.SupportAfter += WE.CfStats.SupportAfter;
    WE.CfStats = CofactorStats();
  }
}

Bdd Evaluator::evalFixpoint(RelId Rel, const EvalOptions *Opts,
                            bool *HitLimit, bool *Stopped) {
  const Relation &R = Sys.relation(Rel);
  assert(R.Def && "evaluating an undefined relation");
  assert(!InFlight.count(Rel) && "relation already being solved");

  RelStats &RS = Stats[R.Name];
  ++RS.Evaluations;

  // A nested re-solve (a volatile relation applied inside a caller's
  // round) iterates its own relation: the caller's delta context — the
  // occurrence substitution and the per-round memo — is neither valid
  // here nor allowed to be clobbered by this solve's own delta rounds.
  const Formula *SavedApp = DeltaApp;
  const std::vector<const Formula *> *SavedPath = DeltaPath;
  Bdd SavedValue = DeltaValue;
  bool SavedInRound = InDeltaRound;
  std::map<const Formula *, Bdd> SavedRoundCache;
  SavedRoundCache.swap(RoundCache);
  DeltaApp = nullptr;
  DeltaPath = nullptr;
  DeltaValue = Bdd();
  InDeltaRound = false;

  FixpointState St;
  // Both strategies pre-solve the lower dependency SCCs callees-first at
  // the top level (in parallel under Threads > 1). The naive scheme used
  // to discover them lazily inside the first round; eager scheduling
  // computes the identical values (a scheduled relation sees no
  // in-flight environment either way), it only moves the solves ahead of
  // the iteration — which is what gives the scheduler whole SCCs to
  // dispatch. Nested naive re-solves keep their historical lazy
  // discovery: their schedule is empty from round two on, and paying a
  // per-round no-op sweep would skew the naive ablation baseline.
  try {
    if (InFlight.empty() || Strategy == EvalStrategy::SemiNaive)
      scheduleDependencies(Rel);
    // Non-monotone or nu equations run the exact naive scheme; monotone mu
    // equations take the delta-propagating core (which degrades gracefully
    // to per-round full evaluation for opaque disjuncts).
    if (Strategy == EvalStrategy::SemiNaive && plan(Rel).SemiNaive)
      runFixpointSemiNaive(Rel, St, Opts, HitLimit, Stopped, RS);
    else
      runFixpointNaive(Rel, St, Opts, HitLimit, Stopped, RS);
  } catch (...) {
    // Restore the caller's delta context before propagating — a nested
    // re-solve interrupted mid-round must not clobber the enclosing
    // round's occurrence substitution or per-round memo (the enclosing
    // loop's own catch then discards its round and rethrows further).
    DeltaApp = SavedApp;
    DeltaPath = SavedPath;
    DeltaValue = std::move(SavedValue);
    InDeltaRound = SavedInRound;
    RoundCache.swap(SavedRoundCache);
    throw;
  }
  RS.FinalNodes = St.Value.nodeCount();

  DeltaApp = SavedApp;
  DeltaPath = SavedPath;
  DeltaValue = std::move(SavedValue);
  InDeltaRound = SavedInRound;
  RoundCache.swap(SavedRoundCache);
  return St.Value;
}

void Evaluator::runFixpointNaive(RelId Rel, FixpointState &St,
                                 const EvalOptions *Opts, bool *HitLimit,
                                 bool *Stopped, RelStats &RS) {
  const Relation &R = Sys.relation(Rel);
  if (St.Saturated)
    return;
  Bdd S;
  if (St.Rounds == 0) {
    // Least fixed-points start from the empty relation; greatest
    // fixed-points from the top element, which is the set of
    // *domain-valid* tuples (bits encoding values >= the domain size are
    // excluded so they can never leak into a result).
    S = Mgr.zero();
    if (R.IsNu) {
      S = Mgr.one();
      for (VarId Formal : R.Formals)
        S &= domainConstraint(Formal);
    }
  } else {
    S = St.Value;
  }
  uint64_t Iter = St.Rounds;
  try {
    while (true) {
      // Round-boundary governor check: a limit that fired between
      // makeNode probes (or a pure deadline expiry during cheap rounds)
      // stops here, before the next round starts, so the state written
      // back below is always a completed round.
      if (support::ResourceGovernor *G = Mgr.governor())
        G->check();
      InFlight[Rel] = S;
      Bdd Next = evalFormula(*R.Def);
      InFlight.erase(Rel);
      ++Iter;
      ++RS.Iterations;
      if (Next == S) {
        St.Saturated = true;
        break;
      }
      S = std::move(Next);
      if (Opts && Opts->Rings)
        Opts->Rings->append(S);
      if (Opts && Opts->EarlyStop && !(S & *Opts->EarlyStop).isZero()) {
        if (Stopped)
          *Stopped = true;
        break;
      }
      if (Opts && Opts->MaxIterations != 0 && Iter >= Opts->MaxIterations) {
        if (HitLimit)
          *HitLimit = true;
        break;
      }
    }
  } catch (...) {
    // A governor interrupt (or an injected fault) landed mid-round. The
    // aborted round's partial values are unreferenced garbage; the locals
    // still hold the last *completed* round, so writing them back leaves
    // the state at a round boundary and a retry resumes the deterministic
    // chain bit-identically to an uninterrupted solve.
    InFlight.erase(Rel);
    St.Value = std::move(S);
    St.Rounds = Iter;
    throw;
  }
  St.Value = std::move(S);
  St.Rounds = Iter;
}

/// The delta-propagating core. Per round r >= 2 it computes
///
///   S_r = S_{r-1}  ∪  ⋃_{opaque D} D(S_{r-1})
///                  ∪  ⋃_{distributive D} ⋃_{occ i} D[occ_i ↦ Δ_{r-1}]
///
/// with Δ_{r-1} ⊇ S_{r-1} \ S_{r-2} and the other occurrences of the
/// iterated relation reading the full S_{r-1}. For a monotone mu equation
/// this telescopes to exactly the naive sequence S_r = Body(S_{r-1}):
/// distributivity of And/Or/Exists over union gives
/// D(S_{r-2} ∪ Δ) = D(S_{r-2}) ∪ ⋃_i D[occ_i ↦ Δ], and monotonicity makes
/// the chain increasing so the accumulated union adds nothing extra.
/// The frontier need not be the *exact* difference: any Δ with
/// S_{r-1} \ S_{r-2} ⊆ Δ ⊆ S_{r-1} yields the same union (the surplus is
/// tuples already in S_{r-1}, whose images are already in S_r). That
/// freedom is used twice: `Bdd::frontier` don't-care-minimizes the narrow
/// frontier, and rounds whose working set still fits the computed cache
/// take Δ = S_{r-1} wholesale (see below).
/// Hence rounds, early stops, iteration limits, and witness rings are all
/// bit-identical to the naive evaluator — only the work per round shrinks.
void Evaluator::runFixpointSemiNaive(RelId Rel, FixpointState &St,
                                     const EvalOptions *Opts, bool *HitLimit,
                                     bool *Stopped, RelStats &RS) {
  const Relation &R = Sys.relation(Rel);
  const EquationPlan &P = plan(Rel);
  assert(P.SemiNaive && "delta core on a naive-only equation");
  assert(!R.IsNu && "delta core iterates from the empty relation");
  if (St.Saturated)
    return;

  // Frontier-width policy. A BDD evaluator is in a different cost regime
  // than an explicit Datalog engine: as long as one round's
  // subcomputations fit the computed cache, evaluating a clause against
  // the full (structurally stable) S is already incremental — the cache
  // cuts every traversal off at the unchanged substructure — while a
  // narrow frontier BDD shares nothing between rounds and makes every
  // image start cold, *creating* distinct nodes the wide join never
  // builds. The narrow frontier starts to win exactly when the per-round
  // working set outgrows the cache and the warm-path assumption
  // collapses. Rounds allocating more than this many fresh nodes switch
  // the next round's frontier to the minimized difference.
  //
  // The crossover was re-measured when the computed cache became 4-way
  // set-associative with promotion-based aging: direct-mapped, conflict
  // evictions cost a round its working set well before the cache was
  // actually full (the old `cacheSlots()/4` margin priced that in); with
  // hot entries protected by promotion, nearly the whole capacity stays
  // useful and the wide regime extends to half the slot count. Measured
  // on bluetooth 2a2s/k4 (the heavy Figure-3 row): /2 gives the lowest
  // peak live nodes and equal-best wall-clock; the terminator negatives
  // are insensitive between /4 and /2.
  const uint64_t NarrowAt = Mgr.cacheSlots() / 2;
  // In narrow rounds, delta-substitute only linear disjuncts: a disjunct
  // with k occurrences needs k passes whose cross terms read the full S,
  // so its delta decomposition does strictly more conjunction work than
  // one whole evaluation under a warm cache. Re-measured with the
  // constrain-based product in the hope the cofactored cross terms would
  // tip bilinear disjuncts (split return clauses) into profitability:
  // they do not — bluetooth 2a2s/k4 still loses ~70% wall-clock and ~25%
  // extra node allocations at k = 2 (see ROADMAP), so the bound stays 1.
  const size_t MaxDeltaOccurrences = 1;
  // Intra-SCC parallelism: a round may fan its distributive products out
  // over the worker pool — top level only, like the SCC scheduler (a
  // nested solve runs inside a worker or a caller's round, where neither
  // the in-flight environment nor the pool is shareable). The cost gate
  // reads the *previous* round's allocation count: import overhead is
  // linear in operand size while product work is superlinear, so heavy
  // rounds amortize the manager crossing and light rounds (where the gate
  // keeps us sequential) never pay it. The auto valve reuses the
  // wide/narrow signal and scale: a round still fitting the computed
  // cache is served well by warm sequential evaluation.
  const bool TopLevel = InFlight.empty();
  const uint64_t ParallelAt =
      DisjunctParallelThreshold ? DisjunctParallelThreshold : NarrowAt;

  Bdd S = Mgr.zero();
  Bdd Delta;
  uint64_t Iter = St.Rounds;
  if (Iter != 0) {
    S = St.Value;
    Delta = St.Delta;
  }
  try {
  while (true) {
    // Round-boundary governor check (see runFixpointNaive): guarantees
    // the catch below always writes back a completed round.
    if (support::ResourceGovernor *G = Mgr.governor())
      G->check();
    InFlight[Rel] = S;
    uint64_t RoundStart = Mgr.stats().NodesCreated;
    uint64_t WorkerCreated = 0;
    Bdd Next;
    if (Iter == 0) {
      // Round 1 evaluates the full body once — this is both the naive
      // round 1 and the seeding of the frontier (everything is new).
      Next = evalFormula(*R.Def);
    } else {
      bool Wide = Delta == S;
      // The per-round memo only pays off when narrow passes re-walk the
      // disjuncts; a wide round touches each disjunct exactly once.
      InDeltaRound = !Wide;
      RoundCache.clear();
      Next = S;
      // Collect the round's independent distributive products when the
      // pool is on and the gate is open: one whole-disjunct unit where
      // the sequential path evaluates the disjunct whole (wide rounds,
      // nonlinear disjuncts), one unit per occurrence pass otherwise. A
      // single unit gains nothing from the pool and stays sequential.
      std::vector<DisjunctUnit> Units;
      if (Threads > 1 && TopLevel && St.LastRoundCreated >= ParallelAt) {
        for (const DisjunctPlan &D : P.Disjuncts) {
          if (D.Kind != DisjunctKind::Distributive)
            continue;
          if (Wide || D.Occurrences.size() > MaxDeltaOccurrences)
            Units.push_back(DisjunctUnit{&D, nullptr});
          else
            for (const SelfOccurrence &Occ : D.Occurrences)
              Units.push_back(DisjunctUnit{&D, &Occ});
        }
        if (Units.size() < 2)
          Units.clear();
      }
      for (const DisjunctPlan &D : P.Disjuncts) {
        switch (D.Kind) {
        case DisjunctKind::NonRecursive:
          // Fixed for the whole solve; already folded in by round 1.
          break;
        case DisjunctKind::Opaque:
          // Opaque disjuncts may re-solve volatile relations and so must
          // run on this thread, under the main manager — before the
          // fan-out, which tolerates no concurrent main-manager touches.
          Next |= evalFormula(*D.Node);
          break;
        case DisjunctKind::Distributive:
          if (!Units.empty())
            break; // Fanned out over the pool below.
          if (Wide || D.Occurrences.size() > MaxDeltaOccurrences) {
            // Δ == S makes every occurrence pass evaluate the identical
            // D(S), so one evaluation covers them all; and a nonlinear
            // disjunct's cross-term passes (every other occurrence at the
            // full S) each cost a full-size conjunction of their own, so
            // joining it whole is the cheaper exact choice too.
            Next |= evalFormula(*D.Node);
            break;
          }
          for (const SelfOccurrence &Occ : D.Occurrences) {
            DeltaApp = Occ.App;
            DeltaPath = &Occ.Path;
            DeltaValue = Delta;
            Next |= evalFormula(*D.Node);
          }
          DeltaApp = nullptr;
          DeltaPath = nullptr;
          DeltaValue = Bdd();
          break;
        }
      }
      if (!Units.empty())
        WorkerCreated =
            evalDisjunctsParallel(Rel, Units, S, Delta, Wide, Next);
      RoundCache.clear();
      InDeltaRound = false;
      ++RS.DeltaRounds;
    }
    InFlight.erase(Rel);
    ++Iter;
    ++RS.Iterations;
    // Worker allocations count toward the round's cost signal: the gates
    // read what the round *computed*, wherever it computed it. (Which
    // manager allocated what may still shift wide/narrow or parallel
    // decisions between thread counts — that only changes which products
    // later rounds evaluate, never the round values; see the frontier
    // freedom above.)
    St.LastRoundCreated =
        Mgr.stats().NodesCreated - RoundStart + WorkerCreated;
    if (Next == S) {
      St.Saturated = true;
      break;
    }
    bool Narrow = St.LastRoundCreated >= NarrowAt;
    Delta = Narrow ? Next.frontier(S) : Next;
    S = std::move(Next);
    if (Opts && Opts->Rings)
      Opts->Rings->append(S);
    if (Opts && Opts->EarlyStop && !(S & *Opts->EarlyStop).isZero()) {
      if (Stopped)
        *Stopped = true;
      break;
    }
    if (Opts && Opts->MaxIterations != 0 && Iter >= Opts->MaxIterations) {
      if (HitLimit)
        *HitLimit = true;
      break;
    }
  }
  } catch (...) {
    // Mid-round interrupt: discard the aborted round, reset the delta
    // context it may have left armed, and write back the last completed
    // round (S/Delta/Iter are only advanced at round completion, and
    // St.LastRoundCreated likewise, so a resumed solve gates and iterates
    // exactly like an uninterrupted one).
    InFlight.erase(Rel);
    DeltaApp = nullptr;
    DeltaPath = nullptr;
    DeltaValue = Bdd();
    InDeltaRound = false;
    RoundCache.clear();
    St.Value = std::move(S);
    St.Delta = std::move(Delta);
    St.Rounds = Iter;
    throw;
  }
  St.Value = std::move(S);
  St.Delta = std::move(Delta);
  St.Rounds = Iter;
}

uint64_t Evaluator::evalDisjunctsParallel(
    RelId Rel, const std::vector<DisjunctUnit> &Units, const Bdd &S,
    const Bdd &Delta, bool Wide, Bdd &Next) {
  ensureParallelContext();
  ParallelContext &PC = *Par;
  const uint64_t CreatedBefore = workerNodesCreated();
  const uint64_t ImportsBefore = importerTranslations();

  /// Exported products as main-manager BDDs, one slot per unit; written
  /// under MainLock, read by the reduction after the run has joined.
  std::vector<Bdd> Products(Units.size());

  // Containment mirrors scheduleDependenciesParallel: tasks never throw
  // into runDag; a governor trip latches and drains the round, any other
  // fault is rethrown after the join. The aborted round's products are
  // discarded wholesale (the caller's round loop rolls back to the last
  // completed round), so partially-filled Products never reduce.
  std::atomic<int> TrippedLimit{0};
  std::exception_ptr FirstError;
  std::mutex ErrMu;

  // A flat dependency list: the products of one round are mutually
  // independent, so this is a plain parallel-for over the pool.
  std::vector<std::vector<unsigned>> Deps(Units.size());
  DagRunStats DS = runDag(
      PC.Pool, unsigned(Units.size()), Deps,
      [&](unsigned Task, unsigned Worker) {
        WorkerContext &W = workerContext(Worker);
        Evaluator &WE = W.Ev;
        const DisjunctUnit &U = Units[Task];
        W.Mgr.setGovernor(Mgr.governor());
        try {

        // Seed everything this product reads from outside the worker:
        // the inputs and completed lower relations its disjunct applies
        // (a distributive disjunct's non-self applications never reach
        // Rel — see classifyDistributive — so at top level every one of
        // them is Completed), plus S and, for an occurrence pass, the
        // frontier. The cached importer returns identical worker handles
        // for unchanged main handles, so re-seeding every round is memo
        // hits plus the round's fresh S/Δ nodes — and re-binding an
        // unchanged input is a no-op that preserves the worker's static
        // cache.
        std::vector<RelId> Applied;
        Sys.collectRels(*U.Disjunct->Node, Applied);
        Bdd WS, WDelta;
        {
          std::lock_guard<std::mutex> Lock(PC.MainLock);
          for (RelId A : Applied) {
            if (A == Rel)
              continue;
            if (Sys.relation(A).isInput())
              WE.bindInput(A, W.In.import(input(A)));
            else
              WE.Completed[A] = W.In.import(Completed.at(A));
          }
          WS = W.In.import(S);
          if (U.Occ)
            WDelta = W.In.import(Delta);
        }

        // The worker-local mirror of one sequential pass: same in-flight
        // S, same round mode, same single-occurrence delta context. The
        // round memo is cleared per unit — sharing off-path values across
        // a worker's units within one round would be sound, but a
        // persistent worker cannot tell rounds apart, and a stale entry
        // from a previous round would be wrong.
        WE.InFlight[Rel] = WS;
        WE.InDeltaRound = !Wide;
        WE.RoundCache.clear();
        if (U.Occ) {
          WE.DeltaApp = U.Occ->App;
          WE.DeltaPath = &U.Occ->Path;
          WE.DeltaValue = WDelta;
        }
        Bdd V = WE.evalFormula(*U.Disjunct->Node);
        WE.DeltaApp = nullptr;
        WE.DeltaPath = nullptr;
        WE.DeltaValue = Bdd();
        WE.InDeltaRound = false;
        WE.RoundCache.clear();
        WE.InFlight.erase(Rel);

        {
          std::lock_guard<std::mutex> Lock(PC.MainLock);
          Products[Task] = W.Out.import(V);
        }
        } catch (const support::ResourceInterrupt &RI) {
          // Reset the worker state the aborted pass left armed; the
          // worker's evaluator stays reusable for the retry.
          WE.DeltaApp = nullptr;
          WE.DeltaPath = nullptr;
          WE.DeltaValue = Bdd();
          WE.InDeltaRound = false;
          WE.RoundCache.clear();
          WE.InFlight.erase(Rel);
          int Expected = 0;
          TrippedLimit.compare_exchange_strong(Expected,
                                               static_cast<int>(RI.Limit));
        } catch (...) {
          WE.DeltaApp = nullptr;
          WE.DeltaPath = nullptr;
          WE.DeltaValue = Bdd();
          WE.InDeltaRound = false;
          WE.RoundCache.clear();
          WE.InFlight.erase(Rel);
          std::lock_guard<std::mutex> Lock(ErrMu);
          if (!FirstError)
            FirstError = std::current_exception();
        }
      });

  if (FirstError || TrippedLimit.load() != 0) {
    // Keep the counters coherent before unwinding — the round is being
    // rolled back, but the work (and its import overhead) happened.
    ParStats.ImportedNodes += importerTranslations() - ImportsBefore;
    mergeWorkerStats();
    for (const std::unique_ptr<WorkerContext> &W : Par->Workers)
      if (W)
        W->Mgr.setGovernor(nullptr);
    if (FirstError)
      std::rethrow_exception(FirstError);
    throw support::ResourceInterrupt{
        static_cast<support::ResourceLimit>(TrippedLimit.load())};
  }

  // Single-threaded from here. Deterministic balanced disjunction tree in
  // fixed unit order: each level ORs adjacent pairs, an odd tail rides
  // along. The operand set equals the sequential left fold's, so ROBDD
  // canonicity makes the reduced value — and everything downstream — the
  // very same node the sequential round produces; the tree shape only
  // balances operand sizes for the computed cache.
  for (size_t Width = Products.size(); Width > 1;) {
    size_t Out = 0;
    for (size_t I = 0; I + 1 < Width; I += 2)
      Products[Out++] = Products[I] | Products[I + 1];
    if (Width & 1)
      Products[Out++] = std::move(Products[Width - 1]);
    Width = Out;
  }
  Next |= Products.front();

  ++ParStats.RoundsParallel;
  ParStats.DisjunctsParallel += DS.TasksRun;
  ParStats.Steals += DS.Steals;
  ParStats.ImportedNodes += importerTranslations() - ImportsBefore;
  // Narrow-round passes apply the frontier cofactor inside the workers
  // now; drain their counters so per-solve totals match the sequential
  // evaluator's exactly (each on-path product is cofactored once per
  // occurrence pass per round, wherever it runs).
  mergeWorkerStats();
  for (const std::unique_ptr<WorkerContext> &W : Par->Workers)
    if (W)
      W->Mgr.setGovernor(nullptr);
  return workerNodesCreated() - CreatedBefore;
}

EvalResult Evaluator::evaluate(RelId Rel, const EvalOptions &Opts) {
  EvalResult Result;
  // A previously completed solve answers a repeat top-level query
  // outright — this is what lets one evaluator serve many queries
  // (fpsolve --eval R,S): a later query over an already-solved relation
  // costs nothing. Only when the caller asks for per-round observables
  // (rings, early stop, an iteration cap) must the iteration re-run.
  if (InFlight.empty() && !Opts.EarlyStop && !Opts.Rings &&
      Opts.MaxIterations == 0) {
    auto It = Completed.find(Rel);
    if (It != Completed.end()) {
      Result.Value = It->second;
      return Result;
    }
  }
  Result.Value =
      evalFixpoint(Rel, &Opts, &Result.HitIterationLimit,
                   &Result.EarlyStopped);
  // A complete top-level solve is a valid memo for later nested uses.
  if (InFlight.empty() && !Result.HitIterationLimit && !Result.EarlyStopped)
    Completed[Rel] = Result.Value;
  return Result;
}

bool IncrementalFixpoint::tryReplay(const Bdd &Target, bool EarlyStop,
                                    uint64_t MaxIterations,
                                    Answer &A) const {
  // The per-round checks in a fresh solve run in this order: a changed
  // round first tests the early-stop target, then the iteration cap. The
  // saturation round (no change) breaks before either check. Replaying the
  // identical checks against the recorded ring values reproduces the fresh
  // stop round and verdict exactly. The rings are stored delta-compressed:
  // the scan for the first target-intersecting round runs over the stored
  // pieces directly (exact for arbitrary chains — see
  // RingLog::firstIntersecting), and at most one full ring is
  // reconstituted: the one whose value the answer carries. Reconstituted
  // rings are canonically identical to the recorded rounds, so answers
  // stay bit-for-bit those of a full-ring log.
  if (EarlyStop || MaxIterations != 0) {
    const size_t Hit = Rings.firstIntersecting(Target);
    for (size_t Ri = 0; Ri < Rings.size(); ++Ri) {
      uint64_t Round = Ri + 1;
      if (EarlyStop && Hit == Ri) {
        A.Iterations = Round;
        A.Reachable = true;
        A.EarlyStopped = true;
        A.Value = Rings.ring(Ri);
        A.RoundsReused = Round;
        return true;
      }
      if (MaxIterations != 0 && Round >= MaxIterations) {
        Bdd V = Rings.ring(Ri);
        A.Iterations = Round;
        A.Reachable = !(V & Target).isZero();
        A.HitIterationLimit = true;
        A.Value = std::move(V);
        A.RoundsReused = Round;
        return true;
      }
    }
  }
  if (St.Saturated) {
    A.Iterations = St.Rounds;
    A.Reachable = !(St.Value & Target).isZero();
    A.Value = St.Value;
    A.RoundsReused = St.Rounds;
    return true;
  }
  return false;
}

bool IncrementalFixpoint::answersFromState(const Bdd &Target, bool EarlyStop,
                                           uint64_t MaxIterations) const {
  Answer A;
  return tryReplay(Target, EarlyStop, MaxIterations, A);
}

IncrementalFixpoint::Answer
IncrementalFixpoint::query(Evaluator &Ev, RelId Rel, const Bdd &Target,
                           bool EarlyStop, uint64_t MaxIterations) {
  Answer A;
  if (tryReplay(Target, EarlyStop, MaxIterations, A))
    return A;

  uint64_t Before = St.Rounds;
  EvalOptions Opts;
  Opts.MaxIterations = MaxIterations;
  if (EarlyStop)
    Opts.EarlyStop = &Target;
  Opts.Rings = &Rings;
  EvalResult R = Ev.resume(Rel, St, Opts);
  A.Iterations = St.Rounds;
  A.Reachable = !(R.Value & Target).isZero();
  A.EarlyStopped = R.EarlyStopped;
  A.HitIterationLimit = R.HitIterationLimit;
  A.Value = R.Value;
  A.RoundsReused = Before;
  A.RoundsComputed = St.Rounds - Before;
  return A;
}

EvalResult IncrementalFixpoint::complete(Evaluator &Ev, RelId Rel,
                                         uint64_t MaxIterations) {
  // Already at the target-independent stopping point (saturated, or every
  // allowed round recorded): answer from state without touching the
  // evaluator. The deterministic round chain means the recorded state is
  // exactly what a fresh uninterrupted ring-recording solve would hold.
  if (St.Saturated || (MaxIterations != 0 && St.Rounds >= MaxIterations)) {
    EvalResult R;
    R.Value = St.Value;
    R.HitIterationLimit = !St.Saturated;
    return R;
  }
  EvalOptions Opts;
  Opts.MaxIterations = MaxIterations;
  Opts.Rings = &Rings;
  return Ev.resume(Rel, St, Opts);
}

EvalResult Evaluator::resume(RelId Rel, FixpointState &State,
                             const EvalOptions &Opts) {
  const Relation &R = Sys.relation(Rel);
  assert(R.Def && "resuming an undefined relation");
  assert(InFlight.empty() &&
         "resume is a top-level entry; no nested evaluation may be live");

  RelStats &RS = Stats[R.Name];
  if (!State.Saturated)
    ++RS.Evaluations;

  EvalResult Result;
  scheduleDependencies(Rel);
  if (Strategy == EvalStrategy::SemiNaive && plan(Rel).SemiNaive)
    runFixpointSemiNaive(Rel, State, &Opts, &Result.HitIterationLimit,
                         &Result.EarlyStopped, RS);
  else
    runFixpointNaive(Rel, State, &Opts, &Result.HitIterationLimit,
                     &Result.EarlyStopped, RS);
  RS.FinalNodes = State.Value.nodeCount();
  Result.Value = State.Value;
  // A saturated state is a complete solve: a valid memo for nested uses by
  // other relations evaluated against this same session state.
  if (State.Saturated)
    Completed[Rel] = State.Value;
  return Result;
}
