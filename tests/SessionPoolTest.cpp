//===- SessionPoolTest.cpp - Memory-budgeted session pool tests ----------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The getafixd session pool's contract: eviction and reopening are
/// invisible to verdicts (bit-identical to a fresh solve), LRU order
/// decides who goes first under a tiny budget, the computed-cache valve
/// fires before any eviction, and concurrent acquires of one program
/// serialize on its single session without mixing programs up.
///
//===----------------------------------------------------------------------===//

#include "server/SessionPool.h"

#include "gen/Workloads.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace getafix;
using server::PoolOptions;
using server::PoolStats;
using server::SessionPool;

namespace {

/// The SessionTest lock-discipline fixture: ERR reachable, SAFE not.
const char *FixtureBody = R"(
main() begin
  locked := F;
  call work(F);
end
work(nested) begin
  if (locked) then
    ERR: skip;
  else
    locked := T;
  fi
  if (!nested) then
    call work(T);
  fi
  if (locked & !locked) then
    SAFE: skip;
  fi
  locked := F;
end
)";

std::string seqFixture() { return std::string("decl locked;\n") + FixtureBody; }

SessionPool::SourceLoader loaderFor(const std::string &Source) {
  return [Source](std::string &Out, std::string &) {
    Out = Source;
    return true;
  };
}

api::SolveResult solveLabel(api::SolverSession &S, const std::string &Label) {
  return S.solve(api::Query::fromSource("").target(Label));
}

/// A family of distinct generated programs (different seeds), each with a
/// known ERR verdict, to populate the pool with many sessions.
std::string driverSource(unsigned Seed, bool Reachable) {
  gen::DriverParams P;
  P.NumProcs = 6;
  P.NumGlobals = 3;
  P.LocalsPerProc = 2;
  P.StmtsPerProc = 6;
  P.Reachable = Reachable;
  P.Seed = Seed;
  return gen::driverProgram(P).Source;
}

/// The observables the bit-identical contract covers.
void expectSameCore(const api::SolveResult &A, const api::SolveResult &B,
                    const char *Context) {
  EXPECT_EQ(A.Status, B.Status) << Context;
  EXPECT_EQ(A.Reachable, B.Reachable) << Context;
  EXPECT_EQ(A.HitIterationLimit, B.HitIterationLimit) << Context;
  EXPECT_EQ(A.Iterations, B.Iterations) << Context;
  EXPECT_EQ(A.SummaryNodes, B.SummaryNodes) << Context;
  EXPECT_EQ(A.WitnessText, B.WitnessText) << Context;
}

} // namespace

//===----------------------------------------------------------------------===//
// Satellite: session memory introspection
//===----------------------------------------------------------------------===//

TEST(SessionPoolTest, FootprintAccessorsReportSolverState) {
  auto S = api::Solver::open(api::Query::fromSource(seqFixture()), {});
  ASSERT_TRUE(S->ok());
  EXPECT_TRUE(solveLabel(*S, "ERR").Reachable);

  EXPECT_GT(S->liveNodes(), 0u);
  EXPECT_GE(S->peakLiveNodes(), S->liveNodes());
  size_t Warm = S->memoryFootprint();
  EXPECT_GT(Warm, 0u);

  // A cleared-and-untouched computed cache is discounted from the
  // estimate — that drop is what makes the pool's phase-1 valve
  // meaningful — and the next solve warms it back up.
  S->clearComputedCache();
  size_t Cold = S->memoryFootprint();
  EXPECT_LT(Cold, Warm);
  EXPECT_FALSE(solveLabel(*S, "SAFE").Reachable);
  EXPECT_GT(S->memoryFootprint(), Cold);
}

//===----------------------------------------------------------------------===//
// Pool basics
//===----------------------------------------------------------------------===//

TEST(SessionPoolTest, AcquireOpensOnceAndHitsAfter) {
  SessionPool Pool({});
  {
    SessionPool::Lease L = Pool.acquire("fixture", loaderFor(seqFixture()));
    ASSERT_TRUE(L.ok());
    EXPECT_FALSE(L.reopened());
    EXPECT_TRUE(solveLabel(L.session(), "ERR").Reachable);
  }
  {
    SessionPool::Lease L = Pool.acquire("fixture", loaderFor(seqFixture()));
    ASSERT_TRUE(L.ok());
    EXPECT_FALSE(L.reopened());
    EXPECT_FALSE(solveLabel(L.session(), "SAFE").Reachable);
    // The second query reuses the state the first one solved.
    EXPECT_GE(L.session().stats().Queries, 2u);
  }
  PoolStats PS = Pool.stats();
  EXPECT_EQ(PS.Lookups, 2u);
  EXPECT_EQ(PS.Opens, 1u);
  EXPECT_EQ(PS.Hits, 1u);
  EXPECT_EQ(PS.Reopens, 0u);
  EXPECT_EQ(PS.ResidentSessions, 1u);
  EXPECT_GT(PS.FootprintBytes, 0u);
}

TEST(SessionPoolTest, LoaderFailureIsAnErrorLeaseNotFatal) {
  SessionPool Pool({});
  {
    SessionPool::Lease L = Pool.acquire(
        "missing", [](std::string &, std::string &Err) {
          Err = "no such program";
          return false;
        });
    EXPECT_FALSE(L.ok());
    EXPECT_EQ(L.error(), "no such program");
  }
  // The key is retried with a working loader afterwards.
  SessionPool::Lease L = Pool.acquire("missing", loaderFor(seqFixture()));
  ASSERT_TRUE(L.ok());
  EXPECT_TRUE(solveLabel(L.session(), "ERR").Reachable);
}

//===----------------------------------------------------------------------===//
// Eviction and reopening
//===----------------------------------------------------------------------===//

TEST(SessionPoolTest, EvictionThenReopenIsBitIdenticalToFresh) {
  api::SolveResult Fresh =
      api::Solver::solve(api::Query::fromSource(seqFixture()).target("ERR"),
                         api::SolverOptions());
  ASSERT_TRUE(Fresh.ok());

  SessionPool Pool({});
  api::SolveResult Before;
  {
    SessionPool::Lease L = Pool.acquire("fixture", loaderFor(seqFixture()));
    ASSERT_TRUE(L.ok());
    Before = solveLabel(L.session(), "ERR");
  }
  ASSERT_TRUE(Pool.isResident("fixture"));
  EXPECT_TRUE(Pool.evict("fixture"));
  EXPECT_FALSE(Pool.isResident("fixture"));

  {
    SessionPool::Lease L = Pool.acquire("fixture", loaderFor(seqFixture()));
    ASSERT_TRUE(L.ok());
    EXPECT_TRUE(L.reopened());
    api::SolveResult After = solveLabel(L.session(), "ERR");
    expectSameCore(Fresh, Before, "pre-eviction vs fresh");
    expectSameCore(Fresh, After, "post-reopen vs fresh");
  }
  PoolStats PS = Pool.stats();
  EXPECT_EQ(PS.Opens, 1u);
  EXPECT_EQ(PS.Reopens, 1u);
  EXPECT_EQ(PS.Evictions, 1u);
}

TEST(SessionPoolTest, MaxSessionsEvictsLeastRecentlyUsed) {
  PoolOptions Opts;
  Opts.MaxResidentSessions = 2;
  SessionPool Pool(Opts);

  auto Touch = [&Pool](const std::string &Key, const std::string &Src) {
    SessionPool::Lease L = Pool.acquire(Key, loaderFor(Src));
    ASSERT_TRUE(L.ok());
    EXPECT_TRUE(solveLabel(L.session(), "ERR").ok());
  };

  std::string A = driverSource(1, true), B = driverSource(2, false),
              C = driverSource(3, true), D = driverSource(4, false);
  Touch("A", A);
  Touch("B", B);
  Touch("C", C); // Over the cap: A (LRU) must go.
  EXPECT_FALSE(Pool.isResident("A"));
  EXPECT_TRUE(Pool.isResident("B"));
  EXPECT_TRUE(Pool.isResident("C"));
  EXPECT_EQ(Pool.residentLru(), (std::vector<std::string>{"B", "C"}));

  Touch("B", B); // B becomes most-recent; C is now LRU.
  Touch("D", D); // Over the cap again: C must go, not B.
  EXPECT_FALSE(Pool.isResident("C"));
  EXPECT_TRUE(Pool.isResident("B"));
  EXPECT_TRUE(Pool.isResident("D"));
  EXPECT_EQ(Pool.residentLru(), (std::vector<std::string>{"B", "D"}));
  EXPECT_EQ(Pool.stats().Evictions, 2u);
}

TEST(SessionPoolTest, CacheClearValveFiresBeforeEviction) {
  // Measure the fixture's warm (cache counted) and cold (cache cleared
  // and discounted) footprints outside the pool.
  size_t Warm, Cold;
  {
    auto S = api::Solver::open(api::Query::fromSource(seqFixture()), {});
    ASSERT_TRUE(S->ok());
    solveLabel(*S, "ERR");
    Warm = S->memoryFootprint();
    S->clearComputedCache();
    Cold = S->memoryFootprint();
  }
  ASSERT_GT(Warm, Cold);

  // Two copies of the program (distinct keys force distinct sessions)
  // under a budget that two cold sessions fit but any warm session
  // busts: the valve alone must bring the pool under budget — no
  // eviction.
  PoolOptions Opts;
  Opts.MemoryBudgetBytes = 2 * Cold + (Warm - Cold) / 2;
  SessionPool Pool(Opts);
  for (const char *Key : {"copy1", "copy2"}) {
    SessionPool::Lease L = Pool.acquire(Key, loaderFor(seqFixture()));
    ASSERT_TRUE(L.ok());
    EXPECT_TRUE(solveLabel(L.session(), "ERR").Reachable);
  }

  PoolStats PS = Pool.stats();
  EXPECT_GE(PS.CacheClears, 1u);
  EXPECT_EQ(PS.Evictions, 0u);
  EXPECT_TRUE(Pool.isResident("copy1"));
  EXPECT_TRUE(Pool.isResident("copy2"));
  EXPECT_LE(PS.FootprintBytes, Opts.MemoryBudgetBytes);

  // Verdicts are unaffected by the valve.
  SessionPool::Lease L = Pool.acquire("copy1", loaderFor(seqFixture()));
  ASSERT_TRUE(L.ok());
  EXPECT_FALSE(L.reopened());
  EXPECT_FALSE(solveLabel(L.session(), "SAFE").Reachable);
}

TEST(SessionPoolTest, BudgetSeesMidLeaseGrowthThroughTheGauge) {
  // The regression this pins: the pool used to budget on footprints
  // cached at lease *release*, so a session that grew during a later
  // lease (here: a witness query arriving on an already-open session)
  // was charged at its old, small number until that lease ended — and
  // the valve made under-reclaiming decisions on the stale sample. The
  // enforcement path must instead re-sample every resident entry, via
  // the session's lock-free gauge when the entry is leased out.
  std::string ASrc = driverSource(21, true);
  std::string BSrc = seqFixture();

  // Deterministic footprints, measured outside the pool: A after one
  // cheap early-stopped query, A after the witness query that completes
  // the solve, and B warm.
  size_t ASmall, ABig, BFoot;
  {
    auto S = api::Solver::open(api::Query::fromSource(ASrc), {});
    ASSERT_TRUE(S->ok());
    ASSERT_TRUE(solveLabel(*S, "ERR").Reachable);
    ASmall = S->memoryFootprint();
    ASSERT_TRUE(
        S->solve(api::Query::fromSource("").target("ERR").witness()).ok());
    ABig = S->memoryFootprint();
  }
  {
    auto S = api::Solver::open(api::Query::fromSource(BSrc), {});
    ASSERT_TRUE(S->ok());
    ASSERT_TRUE(solveLabel(*S, "ERR").Reachable);
    BFoot = S->memoryFootprint();
  }
  ASSERT_GT(ABig, ASmall);

  // Small-A plus B fits with margin; grown-A plus B does not.
  PoolOptions Opts;
  Opts.MemoryBudgetBytes = ASmall + BFoot + (ABig - ASmall) / 2;
  SessionPool Pool(Opts);

  // Prime A and release: the release-time sample is the small number.
  {
    SessionPool::Lease LA = Pool.acquire("A", loaderFor(ASrc));
    ASSERT_TRUE(LA.ok());
    EXPECT_TRUE(solveLabel(LA.session(), "ERR").Reachable);
  }
  EXPECT_EQ(Pool.stats().CacheClears + Pool.stats().Evictions, 0u);

  // Grow A mid-lease and keep holding the lease; only the session's own
  // gauge knows the new size.
  SessionPool::Lease LA = Pool.acquire("A", loaderFor(ASrc));
  ASSERT_TRUE(LA.ok());
  ASSERT_TRUE(
      LA.session()
          .solve(api::Query::fromSource("").target("ERR").witness())
          .ok());

  // B's release runs budget enforcement while A is still leased out. On
  // the stale release-time numbers the pool would see small-A + B, stay
  // "under budget", and do nothing; through the gauge it must see the
  // growth and reclaim.
  {
    SessionPool::Lease LB = Pool.acquire("B", loaderFor(BSrc));
    ASSERT_TRUE(LB.ok());
    EXPECT_TRUE(solveLabel(LB.session(), "ERR").Reachable);
  }
  PoolStats PS = Pool.stats();
  EXPECT_GE(PS.CacheClears + PS.Evictions, 1u);
  // The refreshed accounting carries A at its grown size.
  EXPECT_GE(PS.FootprintBytes, ABig);
}

TEST(SessionPoolTest, ImpossibleBudgetClearsThenEvictsThenReopens) {
  // A one-byte budget: the valve fires first (phase 1), cannot help, and
  // the session is evicted (phase 2). The next acquire reopens and the
  // verdict is unchanged.
  PoolOptions Opts;
  Opts.MemoryBudgetBytes = 1;
  SessionPool Pool(Opts);
  api::SolveResult Before;
  {
    SessionPool::Lease L = Pool.acquire("fixture", loaderFor(seqFixture()));
    ASSERT_TRUE(L.ok());
    Before = solveLabel(L.session(), "ERR");
  }
  PoolStats PS = Pool.stats();
  EXPECT_GE(PS.CacheClears, 1u);
  EXPECT_GE(PS.Evictions, 1u);
  EXPECT_FALSE(Pool.isResident("fixture"));

  SessionPool::Lease L = Pool.acquire("fixture", loaderFor(seqFixture()));
  ASSERT_TRUE(L.ok());
  EXPECT_TRUE(L.reopened());
  expectSameCore(Before, solveLabel(L.session(), "ERR"), "after reopen");
}

//===----------------------------------------------------------------------===//
// Concurrency
//===----------------------------------------------------------------------===//

TEST(SessionPoolTest, ConcurrentClientsShareOneSession) {
  SessionPool Pool({});
  const unsigned Threads = 4, Rounds = 3;
  std::vector<std::thread> Ts;
  std::vector<int> BadVerdicts(Threads, 0);
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&Pool, &BadVerdicts, T] {
      for (unsigned R = 0; R < Rounds; ++R) {
        SessionPool::Lease L =
            Pool.acquire("fixture", loaderFor(seqFixture()));
        if (!L.ok()) {
          ++BadVerdicts[T];
          continue;
        }
        if (!solveLabel(L.session(), "ERR").Reachable)
          ++BadVerdicts[T];
        if (solveLabel(L.session(), "SAFE").Reachable)
          ++BadVerdicts[T];
      }
    });
  for (std::thread &T : Ts)
    T.join();
  for (unsigned T = 0; T < Threads; ++T)
    EXPECT_EQ(BadVerdicts[T], 0) << "thread " << T;

  PoolStats PS = Pool.stats();
  EXPECT_EQ(PS.Opens, 1u); // One session, shared by every client.
  EXPECT_EQ(PS.Lookups, uint64_t(Threads) * Rounds);
  EXPECT_EQ(PS.Hits, uint64_t(Threads) * Rounds - 1);
}

TEST(SessionPoolTest, ConcurrentClientsUnderPressureKeepVerdictsApart) {
  // Four clients over four distinct programs with room for only two
  // resident sessions: evictions and reopenings race with solves, but
  // every program must keep its own verdict.
  PoolOptions Opts;
  Opts.MaxResidentSessions = 2;
  SessionPool Pool(Opts);

  struct Prog {
    std::string Key, Src;
    bool Reachable;
  };
  std::vector<Prog> Progs;
  for (unsigned I = 0; I < 4; ++I)
    Progs.push_back({"p" + std::to_string(I), driverSource(10 + I, I % 2 == 0),
                     I % 2 == 0});

  std::vector<std::thread> Ts;
  std::vector<int> Failures(Progs.size(), 0);
  for (unsigned T = 0; T < Progs.size(); ++T)
    Ts.emplace_back([&Pool, &Progs, &Failures, T] {
      for (unsigned R = 0; R < 4; ++R) {
        // Each thread walks all programs, starting from its own.
        const Prog &P = Progs[(T + R) % Progs.size()];
        SessionPool::Lease L = Pool.acquire(P.Key, loaderFor(P.Src));
        if (!L.ok()) {
          ++Failures[T];
          continue;
        }
        api::SolveResult Res = solveLabel(L.session(), "ERR");
        if (!Res.ok() || Res.Reachable != P.Reachable)
          ++Failures[T];
      }
    });
  for (std::thread &T : Ts)
    T.join();
  for (unsigned T = 0; T < Progs.size(); ++T)
    EXPECT_EQ(Failures[T], 0) << "thread " << T;
  EXPECT_LE(Pool.stats().ResidentSessions, 2u);
}

TEST(SessionPoolTest, EvictAllDropsEverything) {
  SessionPool Pool({});
  for (const char *Key : {"a", "b", "c"}) {
    SessionPool::Lease L =
        Pool.acquire(Key, loaderFor(driverSource(Key[0], true)));
    ASSERT_TRUE(L.ok());
    solveLabel(L.session(), "ERR");
  }
  EXPECT_EQ(Pool.stats().ResidentSessions, 3u);
  EXPECT_EQ(Pool.evictAll(), 3u);
  EXPECT_EQ(Pool.stats().ResidentSessions, 0u);
  EXPECT_EQ(Pool.stats().FootprintBytes, 0u);
  // Entries survive eviction; the next acquire is a reopen, not an open.
  SessionPool::Lease L =
      Pool.acquire("a", loaderFor(driverSource('a', true)));
  ASSERT_TRUE(L.ok());
  EXPECT_TRUE(L.reopened());
}

//===----------------------------------------------------------------------===//
// Poisoned-lease eviction (fault containment)
//===----------------------------------------------------------------------===//

TEST(SessionPoolTest, PoisonedLeaseIsEvictedEagerlyAndNeverReused) {
  SessionPool Pool({});
  {
    SessionPool::Lease L = Pool.acquire("fixture", loaderFor(seqFixture()));
    ASSERT_TRUE(L.ok());
    EXPECT_TRUE(solveLabel(L.session(), "ERR").Reachable);
    // A fault escaped this session (simulated): mark the lease poisoned.
    // Release must destroy the session instead of returning it.
    L.markPoisoned();
  }
  EXPECT_FALSE(Pool.isResident("fixture"));
  PoolStats PS = Pool.stats();
  EXPECT_EQ(PS.PoisonedEvictions, 1u);
  // Poisoned eviction is accounted separately from budget eviction.
  EXPECT_EQ(PS.Evictions, 0u);
  EXPECT_EQ(PS.ResidentSessions, 0u);
  EXPECT_EQ(PS.FootprintBytes, 0u);
}

TEST(SessionPoolTest, ReopenAfterPoisonedEvictionIsBitIdenticalToFresh) {
  api::SolveResult Fresh =
      api::Solver::solve(api::Query::fromSource(seqFixture()).target("ERR"),
                         api::SolverOptions());
  ASSERT_TRUE(Fresh.ok());

  SessionPool Pool({});
  {
    SessionPool::Lease L = Pool.acquire("fixture", loaderFor(seqFixture()));
    ASSERT_TRUE(L.ok());
    solveLabel(L.session(), "ERR");
    L.markPoisoned();
  }
  SessionPool::Lease L = Pool.acquire("fixture", loaderFor(seqFixture()));
  ASSERT_TRUE(L.ok());
  EXPECT_TRUE(L.reopened());
  api::SolveResult After = solveLabel(L.session(), "ERR");
  expectSameCore(Fresh, After, "post-poisoned-reopen vs fresh");
  EXPECT_EQ(Pool.stats().PoisonedEvictions, 1u);
  EXPECT_EQ(Pool.stats().Reopens, 1u);
}
