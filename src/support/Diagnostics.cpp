//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace getafix;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}

std::string Diagnostic::str() const {
  const char *KindStr = "note";
  switch (Kind) {
  case DiagKind::Error:
    KindStr = "error";
    break;
  case DiagKind::Warning:
    KindStr = "warning";
    break;
  case DiagKind::Note:
    KindStr = "note";
    break;
  }
  return Loc.str() + ": " + KindStr + ": " + Message;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
