//===- SessionPool.cpp - Memory-budgeted pool of solver sessions ----------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Locking discipline: PoolMu guards the key map, the LRU clock, the
// statistics, every entry's metadata (Resident/Leased/Footprint/
// LastUse/ValveCold), and every mutation of the entry's session
// *pointer* (E.S). Each entry's own mutex guards the SolverSession
// object behind that pointer and is held for the full duration of a
// lease. Lock order is Entry::Mu before PoolMu — acquire takes PoolMu,
// drops it, blocks on Entry::Mu, then retakes PoolMu for metadata.
// Budget enforcement, which scans entries while holding PoolMu, only
// ever try_locks an entry mutex, so the inverted order cannot deadlock
// and a leased session's state is never touched — for leased entries it
// reads only the session's lock-free footprint gauge, which is why the
// pointer itself must be PoolMu-stable. Expensive session open/teardown
// stays outside PoolMu; only the pointer swap happens under it.
//
//===----------------------------------------------------------------------===//

#include "server/SessionPool.h"

#include <algorithm>
#include <cassert>

namespace getafix {
namespace server {

struct SessionPool::Entry {
  std::string Key;
  api::SolverOptions Opts;

  /// Guards S; held for the whole lease.
  std::mutex Mu;
  std::unique_ptr<api::SolverSession> S;
  std::string Source;
  bool SourceLoaded = false;

  // Metadata; guarded by SessionPool::PoolMu.
  bool Resident = false;
  bool Leased = false;
  /// Computed cache cleared by the budget valve and not used since (a
  /// second clear would free nothing, so phase 1 skips such entries).
  bool ValveCold = false;
  size_t Footprint = 0; ///< Estimate cached at last lease release.
  uint64_t LastUse = 0;
  uint64_t OpenCount = 0;
};

SessionPool::SessionPool(PoolOptions Opts) : Opts(std::move(Opts)) {}
SessionPool::~SessionPool() = default;

//===----------------------------------------------------------------------===//
// Lease
//===----------------------------------------------------------------------===//

SessionPool::Lease &SessionPool::Lease::operator=(Lease &&O) noexcept {
  if (this != &O) {
    release();
    Pool = O.Pool;
    E = std::move(O.E);
    Err = std::move(O.Err);
    Reopened = O.Reopened;
    Poisoned = O.Poisoned;
    O.Pool = nullptr;
    O.E.reset();
    O.Poisoned = false;
  }
  return *this;
}

api::SolverSession &SessionPool::Lease::session() {
  assert(E && E->S && "session() on a failed lease");
  return *E->S;
}

void SessionPool::Lease::release() {
  if (!E) {
    Pool = nullptr;
    return;
  }
  SessionPool *P = Pool;
  if (Poisoned)
    P->notePoisonedRelease(*E);
  else
    P->noteRelease(*E);
  E->Mu.unlock();
  E.reset();
  Pool = nullptr;
  Poisoned = false;
  P->enforceBudget();
}

//===----------------------------------------------------------------------===//
// Acquire
//===----------------------------------------------------------------------===//

SessionPool::Lease SessionPool::acquire(const std::string &Key,
                                        const SourceLoader &LoadSource,
                                        const std::string &EngineOverride) {
  std::shared_ptr<Entry> E;
  {
    std::lock_guard<std::mutex> G(PoolMu);
    ++Stats.Lookups;
    auto It = Map.find(Key);
    if (It == Map.end()) {
      E = std::make_shared<Entry>();
      E->Key = Key;
      E->Opts = Opts.Solver;
      if (!EngineOverride.empty())
        E->Opts.Engine = EngineOverride;
      Map.emplace(Key, E);
    } else {
      E = It->second;
    }
  }

  // Serialize with other clients of this program. Blocks; PoolMu is not
  // held, so other programs proceed.
  E->Mu.lock();

  bool WasResident;
  {
    std::lock_guard<std::mutex> G(PoolMu);
    E->Leased = true;
    E->ValveCold = false; // The lease is about to use the cache.
    E->LastUse = ++Tick;
    WasResident = E->Resident;
    if (WasResident)
      ++Stats.Hits;
  }

  Lease L;
  L.Pool = this;

  if (!WasResident) {
    if (!E->SourceLoaded) {
      std::string Src, Err;
      if (!LoadSource(Src, Err)) {
        {
          std::lock_guard<std::mutex> G(PoolMu);
          E->Leased = false;
        }
        E->Mu.unlock();
        L.Err = Err.empty() ? "failed to load program" : Err;
        return L;
      }
      E->Source = std::move(Src);
      E->SourceLoaded = true;
    }
    // Open (or transparently reopen) the session. Expensive — runs
    // under the entry mutex only; the pointer install happens under
    // PoolMu so budget scans can read it safely. A failed open (parse
    // error, unknown engine) still yields a session; it reports its
    // error from every solve, and the near-empty footprint is harmless
    // to keep pooled.
    auto NewS = api::Solver::open(api::Query::fromSource(E->Source), E->Opts);
    {
      std::lock_guard<std::mutex> G(PoolMu);
      E->S = std::move(NewS);
      E->Resident = true;
      if (E->OpenCount == 0)
        ++Stats.Opens;
      else
        ++Stats.Reopens;
      ++E->OpenCount;
    }
    L.Reopened = E->OpenCount > 1;
  }

  L.E = std::move(E);
  return L;
}

void SessionPool::noteRelease(Entry &E) {
  // Footprint is sampled here, under the entry mutex, so the estimate
  // reflects everything the lease's queries allocated.
  size_t Foot = E.S ? E.S->memoryFootprint() : 0;
  std::lock_guard<std::mutex> G(PoolMu);
  E.Footprint = Foot;
  E.Leased = false;
  E.LastUse = ++Tick;
}

void SessionPool::notePoisonedRelease(Entry &E) {
  // Detach the session pointer under PoolMu (budget scans read it there)
  // but run the (potentially large) BDD manager teardown after the lock
  // is gone. The lease still holds E.Mu, so nobody else uses the object.
  std::unique_ptr<api::SolverSession> Dead;
  {
    std::lock_guard<std::mutex> G(PoolMu);
    Dead = std::move(E.S);
    E.Resident = false;
    E.Footprint = 0;
    E.ValveCold = false;
    E.Leased = false;
    E.LastUse = ++Tick;
    ++Stats.PoisonedEvictions;
  }
}

//===----------------------------------------------------------------------===//
// Reclamation
//===----------------------------------------------------------------------===//

void SessionPool::enforceBudget() {
  for (;;) {
    // Destroying a session frees a whole BDD manager; keep that outside
    // both locks.
    std::unique_ptr<api::SolverSession> Doomed;
    bool Acted = false;
    {
      std::lock_guard<std::mutex> G(PoolMu);
      // Re-sample every resident entry before deciding anything: the
      // cached release-time sample goes stale the moment a session grows
      // *during* a lease (e.g. a later query triggers its witness solve),
      // and a budget decision on stale numbers under-reclaims. Unleased
      // entries are sampled exactly (their mutex is free); leased ones —
      // and the rare unleased entry whose try_lock loses a race — are
      // read through the session's lock-free gauge, updated by the API
      // layer at the end of every query. Gated on an actual byte budget;
      // the count-only policy never reads footprints.
      if (Opts.MemoryBudgetBytes != 0)
        for (const auto &KV : Map) {
          Entry &E = *KV.second;
          if (!E.Resident || !E.S)
            continue;
          if (!E.Leased && E.Mu.try_lock()) {
            E.Footprint = E.S->memoryFootprint();
            E.Mu.unlock();
          } else if (size_t Gauge = E.S->lastSampledFootprint()) {
            E.Footprint = Gauge;
          }
        }
      size_t Total = 0, Resident = 0;
      for (const auto &KV : Map)
        if (KV.second->Resident) {
          Total += KV.second->Footprint;
          ++Resident;
        }
      bool OverBudget =
          Opts.MemoryBudgetBytes != 0 && Total > Opts.MemoryBudgetBytes;
      bool OverCount = Opts.MaxResidentSessions != 0 &&
                       Resident > Opts.MaxResidentSessions;
      if (!OverBudget && !OverCount)
        return;

      std::vector<Entry *> Lru;
      for (const auto &KV : Map)
        if (KV.second->Resident && !KV.second->Leased)
          Lru.push_back(KV.second.get());
      std::sort(Lru.begin(), Lru.end(), [](const Entry *A, const Entry *B) {
        return A->LastUse < B->LastUse;
      });

      // Phase 1 — the coarse valve: clear the computed cache of the
      // least-recently-used session that still has a warm cache. O(1),
      // keeps all solved state, and the footprint estimate drops by the
      // cache's share immediately.
      if (OverBudget) {
        for (Entry *C : Lru) {
          if (C->ValveCold || !C->Mu.try_lock())
            continue;
          if (C->S) {
            C->S->clearComputedCache();
            C->Footprint = C->S->memoryFootprint();
          }
          C->ValveCold = true;
          C->Mu.unlock();
          ++Stats.CacheClears;
          Acted = true;
          break;
        }
      }

      // Phase 2 — full eviction, LRU first. The entry (source text,
      // options, open counts) survives; the next acquire reopens.
      if (!Acted) {
        for (Entry *C : Lru) {
          if (!C->Mu.try_lock())
            continue;
          Doomed = std::move(C->S);
          C->Resident = false;
          C->Footprint = 0;
          C->ValveCold = false;
          C->Mu.unlock();
          ++Stats.Evictions;
          Acted = true;
          break;
        }
      }
    }
    if (!Acted)
      return; // Every candidate is leased; nothing reclaimable now.
  }
}

bool SessionPool::evict(const std::string &Key) {
  std::unique_ptr<api::SolverSession> Doomed;
  {
    std::lock_guard<std::mutex> G(PoolMu);
    auto It = Map.find(Key);
    if (It == Map.end())
      return false;
    Entry &E = *It->second;
    if (!E.Resident || E.Leased || !E.Mu.try_lock())
      return false;
    Doomed = std::move(E.S);
    E.Resident = false;
    E.Footprint = 0;
    E.ValveCold = false;
    E.Mu.unlock();
    ++Stats.Evictions;
  }
  return true;
}

size_t SessionPool::evictAll() {
  std::vector<std::unique_ptr<api::SolverSession>> Doomed;
  size_t N = 0;
  {
    std::lock_guard<std::mutex> G(PoolMu);
    for (const auto &KV : Map) {
      Entry &E = *KV.second;
      if (!E.Resident || E.Leased || !E.Mu.try_lock())
        continue;
      Doomed.push_back(std::move(E.S));
      E.Resident = false;
      E.Footprint = 0;
      E.ValveCold = false;
      E.Mu.unlock();
      ++Stats.Evictions;
      ++N;
    }
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

PoolStats SessionPool::stats() const {
  std::lock_guard<std::mutex> G(PoolMu);
  PoolStats S = Stats;
  S.TotalPrograms = Map.size();
  S.ResidentSessions = 0;
  S.FootprintBytes = 0;
  for (const auto &KV : Map)
    if (KV.second->Resident) {
      ++S.ResidentSessions;
      S.FootprintBytes += KV.second->Footprint;
    }
  return S;
}

size_t SessionPool::footprintBytes() const { return stats().FootprintBytes; }

bool SessionPool::isResident(const std::string &Key) const {
  std::lock_guard<std::mutex> G(PoolMu);
  auto It = Map.find(Key);
  return It != Map.end() && It->second->Resident;
}

std::vector<std::string> SessionPool::residentLru() const {
  std::lock_guard<std::mutex> G(PoolMu);
  std::vector<const Entry *> Es;
  for (const auto &KV : Map)
    if (KV.second->Resident)
      Es.push_back(KV.second.get());
  std::sort(Es.begin(), Es.end(), [](const Entry *A, const Entry *B) {
    return A->LastUse < B->LastUse;
  });
  std::vector<std::string> Keys;
  Keys.reserve(Es.size());
  for (const Entry *E : Es)
    Keys.push_back(E->Key);
  return Keys;
}

} // namespace server
} // namespace getafix
