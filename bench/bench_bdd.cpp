//===- bench_bdd.cpp - BDD package micro-benchmarks ------------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
// google-benchmark microbenchmarks of the BDD substrate: the operations the
// solver's inner loop lives on (apply, relational product, renaming,
// quantification, garbage collection).
//
// Input construction note: the random functions are disjunctions of cubes
// whose supports are *clustered* (a short window of adjacent variables).
// Scattered supports make a DNF's BDD exponential in the number of cubes —
// a property of BDDs, not of this package — which would benchmark the
// blowup instead of the operations.
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"
#include "support/Rng.h"

#include <array>
#include <benchmark/benchmark.h>
#include <mutex>
#include <vector>

using namespace getafix;

namespace {

/// A pseudo-random function over variables [Lo, Hi): an OR of \p Terms
/// cubes, each over a window of adjacent variables (locality keeps the
/// BDD linear in Terms, like the transition relations the solver builds).
Bdd randomFunction(BddManager &Mgr, Rng &R, unsigned Lo, unsigned Hi,
                   unsigned Terms) {
  Bdd F = Mgr.zero();
  for (unsigned T = 0; T < Terms; ++T) {
    unsigned Window = Lo + unsigned(R.below(Hi - Lo - 4));
    Bdd Cube = Mgr.one();
    for (unsigned I = 0; I < 4; ++I) {
      unsigned V = Window + I;
      Cube &= R.flip() ? Mgr.var(V) : Mgr.nvar(V);
    }
    F |= Cube;
  }
  return F;
}

void BM_BddApplyAnd(benchmark::State &State) {
  BddManager Mgr(64);
  Rng R(1);
  Bdd A = randomFunction(Mgr, R, 0, 64, 48);
  Bdd B = randomFunction(Mgr, R, 0, 64, 48);
  for (auto _ : State) {
    benchmark::DoNotOptimize(A & B);
  }
}
BENCHMARK(BM_BddApplyAnd);

void BM_BddRelationalProduct(benchmark::State &State) {
  // Image computation shape: T(x, x') over interleaved vars (current =
  // even, next = odd levels), S(x) over the current vars.
  BddManager Mgr(64);
  Rng R(2);
  Bdd Trans = Mgr.zero();
  for (unsigned I = 0; I < 24; ++I) {
    unsigned Window = 2 * unsigned(R.below(28));
    Bdd Term = Mgr.one();
    for (unsigned V = 0; V < 4; ++V) {
      unsigned Cur = Window + 2 * V;
      Term &= R.flip() ? Mgr.var(Cur) : Mgr.nvar(Cur);
      Term &= R.flip() ? Mgr.var(Cur + 1) : Mgr.nvar(Cur + 1);
    }
    Trans |= Term;
  }
  Bdd States = randomFunction(Mgr, R, 0, 32, 16);
  std::vector<unsigned> CurVars;
  for (unsigned V = 0; V < 64; V += 2)
    CurVars.push_back(V);
  BddCube Cube = Mgr.makeCube(CurVars);
  for (auto _ : State) {
    benchmark::DoNotOptimize(States.andExists(Trans, Cube));
  }
}
BENCHMARK(BM_BddRelationalProduct);

void BM_BddRenameMonotone(benchmark::State &State) {
  BddManager Mgr(64);
  Rng R(3);
  Bdd F = randomFunction(Mgr, R, 0, 32, 32);
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (unsigned V = 0; V < 32; ++V)
    Pairs.emplace_back(V, V + 32);
  BddPerm Perm = Mgr.makePermutation(Pairs);
  for (auto _ : State) {
    benchmark::DoNotOptimize(F.permute(Perm));
  }
}
BENCHMARK(BM_BddRenameMonotone);

void BM_BddExists(benchmark::State &State) {
  BddManager Mgr(64);
  Rng R(4);
  Bdd F = randomFunction(Mgr, R, 0, 64, 64);
  std::vector<unsigned> Vars;
  for (unsigned V = 0; V < 64; V += 3)
    Vars.push_back(V);
  BddCube Cube = Mgr.makeCube(Vars);
  for (auto _ : State) {
    benchmark::DoNotOptimize(F.exists(Cube));
  }
}
BENCHMARK(BM_BddExists);

/// Cache-associativity ablation: the same op mix at a fixed slot budget,
/// direct-mapped versus 4-way. The working set (several relational
/// products cycling through a function pool) deliberately exceeds the
/// 2^10-slot cache so replacement policy, not capacity, is what differs.
void CacheAssociativity(benchmark::State &State, unsigned Ways) {
  BddManager Mgr(64, /*CacheBits=*/10, Ways);
  Rng R(6);
  std::vector<Bdd> Pool;
  for (unsigned I = 0; I < 8; ++I)
    Pool.push_back(randomFunction(Mgr, R, 0, 64, 40));
  std::vector<unsigned> Vars;
  for (unsigned V = 0; V < 64; V += 2)
    Vars.push_back(V);
  BddCube Cube = Mgr.makeCube(Vars);
  unsigned I = 0;
  for (auto _ : State) {
    const Bdd &A = Pool[I % Pool.size()];
    const Bdd &B = Pool[(I + 3) % Pool.size()];
    benchmark::DoNotOptimize(A.andExists(B, Cube));
    ++I;
  }
  State.counters["hit_rate"] = benchmark::Counter(
      Mgr.stats().CacheLookups
          ? double(Mgr.stats().CacheHits) / double(Mgr.stats().CacheLookups)
          : 0.0);
}

void BM_BddCacheDirectMapped(benchmark::State &State) {
  CacheAssociativity(State, 1);
}
BENCHMARK(BM_BddCacheDirectMapped);

void BM_BddCache4Way(benchmark::State &State) {
  CacheAssociativity(State, 4);
}
BENCHMARK(BM_BddCache4Way);

/// The computed-cache key hash, replicated from BddManager::cacheLookup so
/// the conflict workload below can *target* buckets instead of waiting for
/// birthday collisions. Purely a workload-construction device: if the
/// manager's hash changes, this workload degrades into a random one (the
/// benchmark stays valid, just less adversarial).
uint64_t cacheHashTriple(uint32_t A, uint32_t B, uint32_t C) {
  uint64_t H = (uint64_t(A) << 32) ^ (uint64_t(B) << 16) ^ C;
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 33;
  H *= 0xc4ceb9fe1a85ec53ull;
  H ^= H >> 33;
  return H;
}

/// Conflict-heavy hot-set workload at a 2^10-slot cache: a small set of
/// *hot* AND pairs is re-queried every round while a stream of single-use
/// pairs — selected to hash into the hot pairs' buckets — pounds the same
/// slots. This is the regime the ROADMAP's associativity item names: a
/// direct-mapped cache evicts a hot entry on every colliding insert, so
/// the hot set misses once per round; the 4-way cache's transposition
/// promotion migrates re-used entries to the protected front ways and the
/// streaming entries churn the probation way among themselves.
void CacheConflictHotSet(benchmark::State &State, unsigned Ways) {
  BddManager Mgr(64, /*CacheBits=*/10, Ways);
  Rng R(11);
  // Hot operands are large (expensive to recompute); stream operands are
  // small cubes (cheap, but their inserts land where the hot results
  // live).
  std::vector<Bdd> HotFns, StreamFns;
  for (unsigned I = 0; I < 48; ++I)
    HotFns.push_back(randomFunction(Mgr, R, 0, 64, 40));
  for (unsigned I = 0; I < 512; ++I)
    StreamFns.push_back(randomFunction(Mgr, R, 0, 64, 3));

  struct OpPair {
    const Bdd *A, *B;
  };
  std::vector<OpPair> Hot;
  for (unsigned I = 0; I + 1 < HotFns.size(); I += 2)
    Hot.push_back({&HotFns[I], &HotFns[I + 1]});

  // Bucket index of an And key under this manager's geometry (op And has
  // tag 0, third operand 0).
  const uint64_t BucketMask = Mgr.cacheSlots() / Mgr.cacheWays() - 1;
  auto bucketOf = [&](const Bdd &A, const Bdd &B) {
    return cacheHashTriple(A.rawIndex(), B.rawIndex(), 0) & BucketMask;
  };
  std::vector<uint8_t> IsHotBucket(BucketMask + 1, 0);
  for (const OpPair &P : Hot)
    IsHotBucket[bucketOf(*P.A, *P.B)] = 1;

  // Streaming pairs targeted at the hot results' buckets.
  std::vector<OpPair> Stream;
  for (unsigned I = 0; I < StreamFns.size() && Stream.size() < 512; ++I)
    for (unsigned J = I + 1; J < StreamFns.size() && Stream.size() < 512;
         ++J)
      if (IsHotBucket[bucketOf(StreamFns[I], StreamFns[J])])
        Stream.push_back({&StreamFns[I], &StreamFns[J]});

  // Two hot passes per round: the first re-derives whatever the stream
  // evicted (and re-inserts it in the probation way), the second re-hits
  // it — which under transposition promotion is what moves a hot entry
  // out of the way the stream churns. Direct-mapped has no protected way:
  // the colliding stream inserts evict the hot results every round, and
  // the first pass pays the full recomputation again.
  size_t StreamIdx = 0;
  for (auto _ : State) {
    for (unsigned Pass = 0; Pass < 2; ++Pass)
      for (const OpPair &P : Hot)
        benchmark::DoNotOptimize(*P.A & *P.B);
    for (unsigned K = 0; K < 16 && !Stream.empty(); ++K) {
      const OpPair &P = Stream[StreamIdx++ % Stream.size()];
      benchmark::DoNotOptimize(*P.A & *P.B);
    }
  }
  State.counters["hit_rate"] = benchmark::Counter(
      Mgr.stats().CacheLookups
          ? double(Mgr.stats().CacheHits) / double(Mgr.stats().CacheLookups)
          : 0.0);
  State.counters["stream_pairs"] = benchmark::Counter(double(Stream.size()));
}

void BM_BddCacheConflictHotSetDirect(benchmark::State &State) {
  CacheConflictHotSet(State, 1);
}
BENCHMARK(BM_BddCacheConflictHotSetDirect);

void BM_BddCacheConflictHotSet4Way(benchmark::State &State) {
  CacheConflictHotSet(State, 4);
}
BENCHMARK(BM_BddCacheConflictHotSet4Way);

/// The transition-relation shapes the solver builds: T(x, x') over
/// interleaved variables, imaged from a narrow state set. This is the
/// bench for the constrain-based frontier product: `S.andExists(T, cube)`
/// versus `S.andExists(T.constrain(S), cube)` (identical results, the
/// latter walks a care-set-minimized operand), plus the `restrict`
/// sibling.
struct TransitionFixture {
  BddManager Mgr{64};
  Bdd Trans;
  Bdd Narrow;
  BddCube Cube;

  TransitionFixture() {
    Rng R(7);
    Trans = Mgr.zero();
    for (unsigned I = 0; I < 48; ++I) {
      unsigned Window = 2 * unsigned(R.below(28));
      Bdd Term = Mgr.one();
      for (unsigned V = 0; V < 4; ++V) {
        unsigned Cur = Window + 2 * V;
        Term &= R.flip() ? Mgr.var(Cur) : Mgr.nvar(Cur);
        Term &= R.flip() ? Mgr.var(Cur + 1) : Mgr.nvar(Cur + 1);
      }
      Trans |= Term;
    }
    // A frontier-like state set: a handful of near-disjoint cubes over the
    // current variables — small support, few satisfying points.
    Narrow = Mgr.zero();
    for (unsigned I = 0; I < 3; ++I) {
      Bdd CubeF = Mgr.one();
      for (unsigned V = 0; V < 12; V += 2)
        CubeF &= ((I >> (V / 2)) & 1) ? Mgr.var(V) : Mgr.nvar(V);
      Narrow |= CubeF;
    }
    std::vector<unsigned> CurVars;
    for (unsigned V = 0; V < 64; V += 2)
      CurVars.push_back(V);
    Cube = Mgr.makeCube(CurVars);
  }
};

void BM_BddProductPlain(benchmark::State &State) {
  TransitionFixture F;
  for (auto _ : State) {
    F.Mgr.clearComputedCache(); // Cold products: the narrow-round regime.
    benchmark::DoNotOptimize(F.Narrow.andExists(F.Trans, F.Cube));
  }
}
BENCHMARK(BM_BddProductPlain);

void BM_BddProductConstrained(benchmark::State &State) {
  TransitionFixture F;
  for (auto _ : State) {
    F.Mgr.clearComputedCache();
    benchmark::DoNotOptimize(
        F.Narrow.andExists(F.Trans.constrain(F.Narrow), F.Cube));
  }
}
BENCHMARK(BM_BddProductConstrained);

void BM_BddProductRestricted(benchmark::State &State) {
  TransitionFixture F;
  for (auto _ : State) {
    F.Mgr.clearComputedCache();
    benchmark::DoNotOptimize(
        F.Narrow.andExists(F.Trans.restrict(F.Narrow), F.Cube));
  }
}
BENCHMARK(BM_BddProductRestricted);

void BM_BddConstrain(benchmark::State &State) {
  TransitionFixture F;
  for (auto _ : State) {
    F.Mgr.clearComputedCache();
    benchmark::DoNotOptimize(F.Trans.constrain(F.Narrow));
  }
}
BENCHMARK(BM_BddConstrain);

void BM_BddGc(benchmark::State &State) {
  // One manager; each iteration litters the table with dead intermediates
  // and collects them while a live function is held.
  BddManager Mgr(48);
  Mgr.setGcThreshold(0); // Collect only when asked.
  Rng R(5);
  Bdd Keep = randomFunction(Mgr, R, 0, 48, 32);
  for (auto _ : State) {
    State.PauseTiming();
    for (unsigned I = 0; I < 8; ++I)
      randomFunction(Mgr, R, 0, 48, 8);
    State.ResumeTiming();
    Mgr.gc();
    benchmark::DoNotOptimize(Keep.nodeCount());
  }
}
BENCHMARK(BM_BddGc);

//===----------------------------------------------------------------------===//
// Parallel-BDD spike: per-worker managers vs lock-striped shared table
//===----------------------------------------------------------------------===//
//
// The parallel SCC scheduler had two candidate substrates: (a) per-worker
// managers with a cached cross-manager import, (b) one shared manager with
// a lock-striped unique table and per-thread computed caches. These
// benchmarks put numbers on the decision:
//
//   - BM_BddImportThroughput prices option (a)'s only extra cost — the
//     structural copy of solved SCC values between managers (paid once per
//     SCC, off the solve's hot path).
//   - BM_SpikeUniqueTable{Private,Striped} price option (b)'s *best case*:
//     the same open-chaining insert/lookup loop `makeNode` runs, with and
//     without an uncontended striped mutex per operation. The striped
//     variant's overhead is paid on EVERY node created or found by EVERY
//     operation of the solve — millions of times per round — before any
//     actual contention, cache-line ping-pong, or the (stop-the-world)
//     GC/resize coordination a shared table would also need.

/// Structural copy throughput between managers (option (a)'s toll). The
/// destination lives across iterations (manager construction is not the
/// import), the importer does not: every iteration re-walks the source
/// structure cold, the way each export of a freshly solved SCC does.
void BM_BddImportThroughput(benchmark::State &State) {
  BddManager Src(64);
  BddManager Dst(64);
  Rng R(7);
  Bdd F = randomFunction(Src, R, 0, 64, 200);
  size_t Nodes = F.nodeCount();
  for (auto _ : State) {
    BddImporter Imp(Src, Dst);
    benchmark::DoNotOptimize(Imp.import(F));
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(Nodes));
}
BENCHMARK(BM_BddImportThroughput);

/// A stand-alone replica of the unique-table hot loop (hash, chain walk,
/// append), so the spike measures the table discipline rather than the
/// whole operation stack.
struct SpikeTable {
  struct Node {
    uint32_t Var, Low, High, Next;
  };
  std::vector<Node> Nodes;
  std::vector<uint32_t> Buckets;
  explicit SpikeTable(size_t BucketCount)
      : Buckets(BucketCount, UINT32_MAX) {
    Nodes.reserve(1u << 20);
  }
  uint32_t makeNode(uint32_t Var, uint32_t Low, uint32_t High) {
    uint64_t H = (uint64_t(Var) * 0x9e3779b97f4a7c15ull) ^
                 (uint64_t(Low) << 32 | High);
    H ^= H >> 29;
    size_t B = H & (Buckets.size() - 1);
    for (uint32_t N = Buckets[B]; N != UINT32_MAX; N = Nodes[N].Next)
      if (Nodes[N].Var == Var && Nodes[N].Low == Low &&
          Nodes[N].High == High)
        return N;
    uint32_t N = uint32_t(Nodes.size());
    Nodes.push_back({Var, Low, High, Buckets[B]});
    Buckets[B] = N;
    return N;
  }
};

constexpr unsigned SpikeOps = 1u << 18;

void BM_SpikeUniqueTablePrivate(benchmark::State &State) {
  for (auto _ : State) {
    SpikeTable T(1u << 20);
    Rng R(11);
    uint32_t Acc = 0;
    for (unsigned I = 0; I < SpikeOps; ++I)
      Acc ^= T.makeNode(unsigned(R.below(64)), unsigned(R.below(1u << 16)),
                        unsigned(R.below(1u << 16)));
    benchmark::DoNotOptimize(Acc);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * SpikeOps);
}
BENCHMARK(BM_SpikeUniqueTablePrivate);

void BM_SpikeUniqueTableStriped(benchmark::State &State) {
  // 64 stripes is generous (CUDD-style packages stripe far coarser); the
  // point is that even an *uncontended* lock acquisition on this path
  // costs a measurable fraction of the whole makeNode.
  constexpr unsigned Stripes = 64;
  for (auto _ : State) {
    SpikeTable T(1u << 20);
    std::array<std::mutex, Stripes> Locks;
    Rng R(11);
    uint32_t Acc = 0;
    for (unsigned I = 0; I < SpikeOps; ++I) {
      uint32_t Var = unsigned(R.below(64));
      uint32_t Low = unsigned(R.below(1u << 16));
      uint32_t High = unsigned(R.below(1u << 16));
      std::lock_guard<std::mutex> G(Locks[(Var ^ Low ^ High) % Stripes]);
      Acc ^= T.makeNode(Var, Low, High);
    }
    benchmark::DoNotOptimize(Acc);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * SpikeOps);
}
BENCHMARK(BM_SpikeUniqueTableStriped);

} // namespace

BENCHMARK_MAIN();
