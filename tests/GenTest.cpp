//===- GenTest.cpp - Workload-generator ground-truth tests ----------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground-truth tests for the benchmark generators beyond shape checks
/// (which WorkloadsTest in BpTest covers): the reachability answers the
/// generators *promise* must hold under the symbolic engine, and the two
/// TERMINATOR dead-variable modelling styles (iterative nondet-kill vs
/// schoose) must be observationally equivalent — they model the same
/// `dead` statement, exactly as the paper's Figure 2 runs both.
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"
#include "bp/Cfg.h"
#include "bp/Parser.h"
#include "gen/Workloads.h"

#include <gtest/gtest.h>

using namespace getafix;

namespace {

struct Parsed {
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg;
};

Parsed parse(const std::string &Src) {
  DiagnosticEngine Diags;
  Parsed P;
  P.Prog = bp::parseProgram(Src, Diags);
  EXPECT_TRUE(P.Prog != nullptr) << Diags.str();
  if (!P.Prog)
    P.Prog = bp::parseProgram("main() begin end", Diags);
  P.Cfg = bp::buildCfg(*P.Prog);
  return P;
}

bool solve(const Parsed &P, const std::string &Label) {
  SolveResult R =
      Solver::solve(Query::fromCfg(P.Cfg).target(Label), SolverOptions());
  EXPECT_TRUE(R.ok()) << R.Error;
  return R.Reachable;
}

class TerminatorEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<unsigned, bool, uint64_t>> {
};

class DriverTruthTest
    : public ::testing::TestWithParam<std::tuple<bool, uint64_t>> {};

} // namespace

TEST_P(TerminatorEquivalenceTest, IterativeAndSchooseStylesAgree) {
  auto [Bits, Reachable, Seed] = GetParam();
  gen::TerminatorParams P;
  P.CounterBits = Bits;
  P.NumDeadVars = 3;
  P.Reachable = Reachable;
  P.Seed = Seed;

  P.Style = gen::DeadVarStyle::Iterative;
  gen::Workload Iter = gen::terminatorProgram(P);
  P.Style = gen::DeadVarStyle::Schoose;
  gen::Workload Schoose = gen::terminatorProgram(P);
  P.Style = gen::DeadVarStyle::Native;
  gen::Workload Native = gen::terminatorProgram(P);

  // Three modellings of `dead` — the paper's two hand encodings and the
  // native statement — same program semantics.
  auto IterParsed = parse(Iter.Source);
  auto SchooseParsed = parse(Schoose.Source);
  auto NativeParsed = parse(Native.Source);
  bool IterReach = solve(IterParsed, Iter.TargetLabel);
  bool SchooseReach = solve(SchooseParsed, Schoose.TargetLabel);
  bool NativeReach = solve(NativeParsed, Native.TargetLabel);
  EXPECT_EQ(IterReach, SchooseReach);
  EXPECT_EQ(IterReach, NativeReach);
  EXPECT_EQ(IterReach, Iter.ExpectReachable);
  EXPECT_EQ(Iter.ExpectReachable, Reachable);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TerminatorEquivalenceTest,
    ::testing::Combine(::testing::Values(3u, 4u, 5u),
                       ::testing::Bool(),
                       ::testing::Values(uint64_t(1), uint64_t(7))));

TEST_P(DriverTruthTest, GeneratedExpectationHolds) {
  auto [Reachable, Seed] = GetParam();
  gen::DriverParams P;
  P.NumProcs = 6;
  P.NumGlobals = 4;
  P.LocalsPerProc = 3;
  P.StmtsPerProc = 8;
  P.Reachable = Reachable;
  P.Seed = Seed;
  gen::Workload W = gen::driverProgram(P);

  auto Parsed = parse(W.Source);
  EXPECT_EQ(solve(Parsed, W.TargetLabel), W.ExpectReachable) << W.Name;
  EXPECT_EQ(W.ExpectReachable, Reachable);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DriverTruthTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(uint64_t(2), uint64_t(3),
                                         uint64_t(5), uint64_t(8))));

TEST(GenTest, NativeDeadStatementHavocsVariables) {
  // After `dead a, b;` every valuation of a, b is possible.
  auto P = parse(R"(
decl g;
main() begin
  decl a, b;
  a, b := T, F;
  dead a, b;
  if (a & b) then ERR: skip; else skip; fi
  return;
end
)");
  EXPECT_TRUE(solve(P, "ERR"));
}

TEST(GenTest, DeadStatementListRequiresIdentifiers) {
  DiagnosticEngine Diags;
  auto Prog = bp::parseProgram(
      "main() begin dead 1; return; end", Diags);
  EXPECT_TRUE(Prog == nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(GenTest, BluetoothConfigurationsParseWithExpectedThreads) {
  for (auto [Adders, Stoppers] :
       std::vector<std::pair<unsigned, unsigned>>{
           {1, 1}, {1, 2}, {2, 1}, {2, 2}}) {
    std::string Src = gen::bluetoothModel(Adders, Stoppers);
    DiagnosticEngine Diags;
    auto Conc = bp::parseConcurrentProgram(Src, Diags);
    ASSERT_TRUE(Conc != nullptr) << Diags.str();
    EXPECT_EQ(Conc->numThreads(), Adders + Stoppers);
  }
}

TEST(GenTest, RegressionSuiteNamesAreUnique) {
  std::vector<gen::Workload> Suite = gen::regressionSuite();
  std::set<std::string> Names;
  for (const gen::Workload &W : Suite)
    EXPECT_TRUE(Names.insert(W.Name).second) << "duplicate: " << W.Name;
}

TEST(GenTest, TerminatorLocGrowsWithCounterWidth) {
  gen::TerminatorParams P;
  P.Style = gen::DeadVarStyle::Iterative;
  P.CounterBits = 4;
  size_t Small = gen::terminatorProgram(P).Source.size();
  P.CounterBits = 8;
  size_t Large = gen::terminatorProgram(P).Source.size();
  EXPECT_GT(Large, Small);
}
