//===- WitnessTest.cpp - Counterexample extraction tests ------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for witness (counterexample) extraction: every reachable target
/// must yield a trace that the *explicit* replay verifier accepts, across
/// hand-written programs, the regression suite, and random driver-shaped
/// programs. The verifier itself is pinned by tamper tests: corrupted
/// traces must be rejected with a useful message.
///
//===----------------------------------------------------------------------===//

#include "bp/Cfg.h"
#include "bp/Parser.h"
#include "gen/Workloads.h"
#include "reach/Witness.h"

#include <gtest/gtest.h>

using namespace getafix;
using namespace getafix::reach;

namespace {

struct Parsed {
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg;
};

Parsed parse(const std::string &Src) {
  DiagnosticEngine Diags;
  Parsed P;
  P.Prog = bp::parseProgram(Src, Diags);
  EXPECT_TRUE(P.Prog != nullptr) << Diags.str() << "\nsource:\n" << Src;
  if (!P.Prog)
    P.Prog = bp::parseProgram("main() begin end", Diags);
  P.Cfg = bp::buildCfg(*P.Prog);
  return P;
}

/// Runs extraction for `Label` and, when reachable, demands a verified
/// trace. Returns the result for additional assertions.
WitnessResult extractAndVerify(const Parsed &P, const std::string &Label) {
  SeqOptions Opts;
  WitnessResult R = checkReachabilityOfLabelWithWitness(P.Cfg, Label, Opts);
  if (!R.Reachable)
    return R;
  unsigned ProcId = 0, Pc = 0;
  EXPECT_TRUE(P.Cfg.findLabelPc(Label, ProcId, Pc));
  std::string Error;
  EXPECT_TRUE(verifyWitness(P.Cfg, R.Steps, ProcId, Pc, &Error))
      << Error << "\n"
      << formatWitness(P.Cfg, R.Steps);
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Hand-written programs
//===----------------------------------------------------------------------===//

TEST(WitnessTest, StraightLineTrace) {
  auto P = parse(R"(
decl g;
main() begin
  g := T;
  g := !g;
  ERR: skip;
  return;
end
)");
  WitnessResult R = extractAndVerify(P, "ERR");
  ASSERT_TRUE(R.Reachable);
  // Init plus one step per statement before the label.
  ASSERT_GE(R.Steps.size(), 3u);
  EXPECT_EQ(R.Steps.front().Kind, WitnessStepKind::Init);
  for (size_t I = 1; I < R.Steps.size(); ++I)
    EXPECT_EQ(R.Steps[I].Kind, WitnessStepKind::Internal);
  // g := T; g := !g leaves g == false at the target.
  EXPECT_EQ(R.Steps.back().Globals & 1, 0u);
}

TEST(WitnessTest, UnreachableTargetYieldsNoTrace) {
  auto P = parse(R"(
decl g;
main() begin
  g := T;
  if (!g) then ERR: skip; else skip; fi
  return;
end
)");
  SeqOptions Opts;
  WitnessResult R = checkReachabilityOfLabelWithWitness(P.Cfg, "ERR", Opts);
  EXPECT_FALSE(R.Reachable);
  EXPECT_TRUE(R.Steps.empty());
}

TEST(WitnessTest, MissingLabelReported) {
  auto P = parse("main() begin skip; return; end");
  SeqOptions Opts;
  WitnessResult R =
      checkReachabilityOfLabelWithWitness(P.Cfg, "NOPE", Opts);
  EXPECT_FALSE(R.TargetFound);
}

TEST(WitnessTest, CallAndReturnStructure) {
  auto P = parse(R"(
decl g;
main() begin
  decl a;
  a := flip(g);
  if (a) then ERR: skip; else skip; fi
  return;
end
flip(x) begin
  return !x;
end
)");
  WitnessResult R = extractAndVerify(P, "ERR");
  ASSERT_TRUE(R.Reachable);
  unsigned Calls = 0, Returns = 0;
  for (const WitnessStep &S : R.Steps) {
    Calls += S.Kind == WitnessStepKind::Call;
    Returns += S.Kind == WitnessStepKind::Return;
  }
  EXPECT_EQ(Calls, 1u);
  EXPECT_EQ(Returns, 1u);
}

TEST(WitnessTest, RecursiveDescentTrace) {
  // parity(n) over a 3-bit counter encoded with booleans: the target needs
  // recursion three levels deep.
  auto P = parse(R"(
decl g0, g1;
main() begin
  g0, g1 := T, T;
  call down();
  return;
end
down() begin
  if (g0) then
    g0 := F;
    call down();
  else
    if (g1) then
      g0, g1 := T, F;
      call down();
    else
      ERR: skip;
    fi
  fi
  return;
end
)");
  WitnessResult R = extractAndVerify(P, "ERR");
  ASSERT_TRUE(R.Reachable);
  unsigned Calls = 0;
  for (const WitnessStep &S : R.Steps)
    Calls += S.Kind == WitnessStepKind::Call;
  EXPECT_GE(Calls, 3u) << formatWitness(P.Cfg, R.Steps);
}

TEST(WitnessTest, TargetInsideCalleeNeedsEntryChain) {
  // The target label is inside a callee two calls deep; the extractor must
  // reconstruct the call chain from main.
  auto P = parse(R"(
decl g;
main() begin
  call outer();
  return;
end
outer() begin
  call inner();
  return;
end
inner() begin
  skip;
  ERR: skip;
  return;
end
)");
  WitnessResult R = extractAndVerify(P, "ERR");
  ASSERT_TRUE(R.Reachable);
  unsigned Calls = 0;
  for (const WitnessStep &S : R.Steps)
    Calls += S.Kind == WitnessStepKind::Call;
  EXPECT_EQ(Calls, 2u);
  // The trace ends inside `inner` without returning.
  EXPECT_EQ(R.Steps.back().Kind, WitnessStepKind::Internal);
}

TEST(WitnessTest, TargetAtCalleeEntryEndsWithCallStep) {
  auto P = parse(R"(
decl g;
main() begin
  call sub();
  return;
end
sub() begin
  ERR: skip;
  return;
end
)");
  WitnessResult R = extractAndVerify(P, "ERR");
  ASSERT_TRUE(R.Reachable);
  EXPECT_EQ(R.Steps.back().Kind, WitnessStepKind::Call);
  EXPECT_EQ(R.Steps.back().Pc, 0u);
}

TEST(WitnessTest, NondeterministicChoicesAreResolved) {
  auto P = parse(R"(
decl g;
main() begin
  decl a, b;
  a := *;
  b := *;
  if (a & !b) then ERR: skip; else skip; fi
  return;
end
)");
  WitnessResult R = extractAndVerify(P, "ERR");
  ASSERT_TRUE(R.Reachable);
  // The verified trace must have picked a=1, b=0 before the branch.
  const WitnessStep &Last = R.Steps.back();
  EXPECT_EQ(Last.Locals & 0b11, 0b01u);
}

TEST(WitnessTest, MultiValueReturnsInTrace) {
  auto P = parse(R"(
decl g;
main() begin
  decl a, b;
  a, b := pair(T);
  if (a & b) then ERR: skip; else skip; fi
  return;
end
pair(x) begin
  return x, x;
end
)");
  WitnessResult R = extractAndVerify(P, "ERR");
  ASSERT_TRUE(R.Reachable);
}

TEST(WitnessTest, WhileLoopUnrollsInTrace) {
  // The loop must run until the nondeterministic exit; the witness picks
  // a concrete number of iterations.
  auto P = parse(R"(
decl g;
main() begin
  decl stop;
  stop := F;
  g := F;
  while (!stop) do
    g := !g;
    stop := *;
  od
  if (g) then ERR: skip; else skip; fi
  return;
end
)");
  WitnessResult R = extractAndVerify(P, "ERR");
  ASSERT_TRUE(R.Reachable);
}

//===----------------------------------------------------------------------===//
// Verifier tamper tests
//===----------------------------------------------------------------------===//

namespace {

/// Fixture providing one known-good trace to corrupt.
class TamperTest : public ::testing::Test {
protected:
  void SetUp() override {
    // flip(T) returns false, so the !a branch is the reachable one.
    P = parse(R"(
decl g;
main() begin
  decl a;
  g := T;
  a := flip(g);
  if (!a) then ERR: skip; else skip; fi
  return;
end
flip(x) begin
  return !x;
end
)");
    SeqOptions Opts;
    Result = checkReachabilityOfLabelWithWitness(P.Cfg, "ERR", Opts);
    ASSERT_TRUE(Result.Reachable);
    ASSERT_TRUE(P.Cfg.findLabelPc("ERR", TargetProc, TargetPc));
    std::string Error;
    ASSERT_TRUE(
        verifyWitness(P.Cfg, Result.Steps, TargetProc, TargetPc, &Error))
        << Error;
  }

  Parsed P;
  WitnessResult Result;
  unsigned TargetProc = 0, TargetPc = 0;
};

} // namespace

TEST_F(TamperTest, RejectsCorruptedValuation) {
  auto Steps = Result.Steps;
  Steps.back().Globals ^= 1;
  std::string Error;
  EXPECT_FALSE(verifyWitness(P.Cfg, Steps, TargetProc, TargetPc, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST_F(TamperTest, RejectsDroppedStep) {
  ASSERT_GE(Result.Steps.size(), 3u);
  auto Steps = Result.Steps;
  Steps.erase(Steps.begin() + 1);
  EXPECT_FALSE(verifyWitness(P.Cfg, Steps, TargetProc, TargetPc));
}

TEST_F(TamperTest, RejectsWrongTarget) {
  EXPECT_FALSE(
      verifyWitness(P.Cfg, Result.Steps, TargetProc, TargetPc + 1));
}

TEST_F(TamperTest, RejectsEmptyTrace) {
  EXPECT_FALSE(verifyWitness(P.Cfg, {}, TargetProc, TargetPc));
}

TEST_F(TamperTest, RejectsTraceNotStartingAtInit) {
  auto Steps = Result.Steps;
  Steps.front().Kind = WitnessStepKind::Internal;
  EXPECT_FALSE(verifyWitness(P.Cfg, Steps, TargetProc, TargetPc));
}

TEST_F(TamperTest, RejectsReturnWithoutCall) {
  auto Steps = Result.Steps;
  for (WitnessStep &S : Steps)
    if (S.Kind == WitnessStepKind::Call)
      S.Kind = WitnessStepKind::Internal;
  EXPECT_FALSE(verifyWitness(P.Cfg, Steps, TargetProc, TargetPc));
}

//===----------------------------------------------------------------------===//
// Formatting
//===----------------------------------------------------------------------===//

TEST(WitnessTest, FormatMentionsLabelsAndProcedures) {
  auto P = parse(R"(
decl g;
main() begin
  call sub();
  return;
end
sub() begin
  ERR: skip;
  return;
end
)");
  WitnessResult R = extractAndVerify(P, "ERR");
  ASSERT_TRUE(R.Reachable);
  std::string Text = formatWitness(P.Cfg, R.Steps);
  EXPECT_NE(Text.find("main"), std::string::npos);
  EXPECT_NE(Text.find("sub"), std::string::npos);
  EXPECT_NE(Text.find("(ERR)"), std::string::npos);
  EXPECT_NE(Text.find("init"), std::string::npos);
  EXPECT_NE(Text.find("call"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Sweeps: regression suite and random drivers
//===----------------------------------------------------------------------===//

namespace {

class RegressionWitnessTest : public ::testing::TestWithParam<size_t> {};
class DriverWitnessTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(RegressionWitnessTest, EveryReachableCaseHasAVerifiedTrace) {
  gen::Workload W = gen::regressionSuite()[GetParam()];
  auto P = parse(W.Source);
  WitnessResult R = extractAndVerify(P, W.TargetLabel);
  if (W.ExpectKnown)
    EXPECT_EQ(R.Reachable, W.ExpectReachable) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, RegressionWitnessTest,
    ::testing::Range(size_t(0), gen::regressionSuite().size()));

TEST_P(DriverWitnessTest, RandomDriversYieldVerifiedTraces) {
  gen::DriverParams DP;
  DP.NumProcs = 5;
  DP.NumGlobals = 3;
  DP.LocalsPerProc = 2;
  DP.StmtsPerProc = 6;
  DP.Reachable = true;
  DP.Seed = GetParam();
  gen::Workload W = gen::driverProgram(DP);
  auto P = parse(W.Source);
  WitnessResult R = extractAndVerify(P, W.TargetLabel);
  EXPECT_TRUE(R.Reachable) << W.Name;
  EXPECT_FALSE(R.Steps.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverWitnessTest,
                         ::testing::Range(uint64_t(1), uint64_t(9)));
