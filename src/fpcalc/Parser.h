//===- Parser.h - Textual front-end for the calculus ------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the MUCKE-like concrete syntax that `System::print()` produces
/// back into a `System`, so fixed-point algorithms can be written, stored
/// and exchanged as *text* — the way Getafix ships its algorithms to MUCKE
/// (Figure 1's "MUCKE file"). Grammar:
///
///   system  ::= decl*
///   decl    ::= 'domain' NAME '[' NUM ']' ';'
///             | 'domain' NAME '[' 'bits' NUM ']' ';'
///             | 'input' 'bool' NAME '(' params ')' ';'
///             | 'fact' NAME '(' NUM, ... ')' ';'
///             | ('mu' | 'nu') 'bool' NAME '(' params ')' ':=' formula ';'
///   params  ::= [ NAME NAME (',' NAME NAME)* ]          // domain var
///   formula ::= or; or ::= and ('|' and)*; and ::= not ('&' not)*
///   not     ::= '!' atom | atom
///   atom    ::= 'true' | 'false' | '(' formula ')'
///             | ('exists' | 'forall') params '.' atom
///             | NAME '(' args ')' | NAME '=' (NAME | NUM)
///
/// Identifiers may contain dots (the printer emits `s.pc`-style names for
/// flattened tuple fields). Relations may be referenced before their
/// declaration (the parser makes two passes), so mutually recursive
/// equation systems print/parse round-trip.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_FPCALC_PARSER_H
#define GETAFIX_FPCALC_PARSER_H

#include "fpcalc/Calculus.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace getafix {
namespace fpc {

/// One `fact R(c1, ..., cn);` declaration: a concrete tuple of an input
/// relation. Facts make a textual system *self-contained* — a standalone
/// solver (tools/fpsolve) can evaluate it without a host program binding
/// the input relations, Datalog-style.
struct Fact {
  RelId Rel = 0;
  std::vector<uint64_t> Values;
};

/// Parses \p Text into a System. Returns null after reporting into
/// \p Diags on any lexical, syntactic or binding error (unknown domain,
/// free variable, rebinding a variable at a different domain, duplicate
/// relation, arity mismatch on application). `fact` declarations are
/// collected into \p Facts; when \p Facts is null they are rejected.
std::unique_ptr<System> parseSystem(const std::string &Text,
                                    DiagnosticEngine &Diags,
                                    std::vector<Fact> *Facts = nullptr);

class Evaluator; // From Evaluator.h; binding facts needs a BDD backend.

/// Binds every input relation of \p Sys in \p Ev: the disjunction of its
/// fact tuples (the empty relation when it has none).
void bindFacts(Evaluator &Ev, const System &Sys,
               const std::vector<Fact> &Facts);

} // namespace fpc
} // namespace getafix

#endif // GETAFIX_FPCALC_PARSER_H
