//===- Parser.cpp - Boolean program parser --------------------------------===//

#include "bp/Parser.h"
#include "bp/Sema.h"

#include <algorithm>

using namespace getafix;
using namespace getafix::bp;
using namespace getafix::bp::detail;

//===----------------------------------------------------------------------===//
// Token plumbing
//===----------------------------------------------------------------------===//

void Parser::bump() {
  Cur = Ahead;
  Ahead = Lex.next();
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (Cur.is(Kind)) {
    bump();
    return true;
  }
  Diags.error(Cur.Loc, std::string("expected '") + Lexer::spelling(Kind) +
                           "' " + Context + ", found '" +
                           (Cur.is(TokenKind::Identifier)
                                ? Cur.Text
                                : Lexer::spelling(Cur.Kind)) +
                           "'");
  return false;
}

bool Parser::consumeIf(TokenKind Kind) {
  if (!Cur.is(Kind))
    return false;
  bump();
  return true;
}

void Parser::skipToRecoveryPoint() {
  while (!Cur.is(TokenKind::Eof) && !Cur.is(TokenKind::Semicolon) &&
         !Cur.is(TokenKind::KwEnd))
    bump();
  consumeIf(TokenKind::Semicolon);
}

//===----------------------------------------------------------------------===//
// Declarations and program structure
//===----------------------------------------------------------------------===//

void Parser::parseDeclList(std::vector<std::string> &Names) {
  // Caller has consumed the `decl` keyword.
  do {
    if (!Cur.is(TokenKind::Identifier)) {
      expect(TokenKind::Identifier, "in variable declaration");
      skipToRecoveryPoint();
      return;
    }
    Names.push_back(Cur.Text);
    bump();
  } while (consumeIf(TokenKind::Comma));
  expect(TokenKind::Semicolon, "after variable declaration");
}

std::unique_ptr<Program> Parser::parseProgramBody(TokenKind EndKind) {
  auto Prog = std::make_unique<Program>();
  while (Cur.is(TokenKind::KwDecl)) {
    bump();
    parseDeclList(Prog->Globals);
  }
  while (Cur.is(TokenKind::Identifier)) {
    if (auto P = parseProc())
      Prog->Procs.push_back(std::move(P));
    else
      skipToRecoveryPoint();
  }
  if (!Cur.is(EndKind))
    expect(EndKind, "after procedure list");
  return Prog;
}

std::unique_ptr<Program> Parser::parseSequential() {
  auto Prog = parseProgramBody(TokenKind::Eof);
  return Prog;
}

std::unique_ptr<ConcurrentProgram> Parser::parseConcurrent() {
  auto Conc = std::make_unique<ConcurrentProgram>();
  expect(TokenKind::KwShared, "at start of concurrent program");
  expect(TokenKind::KwDecl, "after 'shared'");
  parseDeclList(Conc->SharedGlobals);
  while (Cur.is(TokenKind::KwShared)) {
    bump();
    expect(TokenKind::KwDecl, "after 'shared'");
    parseDeclList(Conc->SharedGlobals);
  }
  while (Cur.is(TokenKind::KwThread)) {
    bump();
    auto Thread = parseProgramBody(TokenKind::KwEnd);
    expect(TokenKind::KwEnd, "to close thread");
    if (!Thread->Globals.empty())
      Diags.error(SourceLoc{}, "threads may not declare private globals; "
                               "all globals are shared (Section 5)");
    Thread->Globals = Conc->SharedGlobals;
    Conc->Threads.push_back(std::move(Thread));
  }
  if (!Cur.is(TokenKind::Eof))
    expect(TokenKind::Eof, "after thread list");
  if (Conc->Threads.empty())
    Diags.error(SourceLoc{}, "concurrent program has no threads");
  return Conc;
}

std::unique_ptr<Proc> Parser::parseProc() {
  auto P = std::make_unique<Proc>();
  P->Name = Cur.Text;
  P->Loc = Cur.Loc;
  bump();
  if (!expect(TokenKind::LParen, "after procedure name"))
    return nullptr;
  if (!Cur.is(TokenKind::RParen)) {
    do {
      if (!Cur.is(TokenKind::Identifier)) {
        expect(TokenKind::Identifier, "in parameter list");
        return nullptr;
      }
      P->Params.push_back(Cur.Text);
      bump();
    } while (consumeIf(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "after parameter list"))
    return nullptr;
  if (!expect(TokenKind::KwBegin, "to open procedure body"))
    return nullptr;
  while (Cur.is(TokenKind::KwDecl)) {
    bump();
    parseDeclList(P->Locals);
  }
  parseStmtList(P->Body, {TokenKind::KwEnd});
  if (!expect(TokenKind::KwEnd, "to close procedure body"))
    return nullptr;
  return P;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Parser::parseStmtList(std::vector<StmtPtr> &Out,
                           std::initializer_list<TokenKind> Terminators) {
  auto AtTerminator = [&] {
    if (Cur.is(TokenKind::Eof))
      return true;
    return std::any_of(Terminators.begin(), Terminators.end(),
                       [&](TokenKind K) { return Cur.is(K); });
  };
  while (!AtTerminator()) {
    StmtPtr S = parseStmt();
    if (!S) {
      skipToRecoveryPoint();
      continue;
    }
    Out.push_back(std::move(S));
  }
}

StmtPtr Parser::parseStmt() {
  std::string Label;
  SourceLoc LabelLoc;
  if (Cur.is(TokenKind::Identifier) && Ahead.is(TokenKind::Colon)) {
    Label = Cur.Text;
    LabelLoc = Cur.Loc;
    bump();
    bump();
  }
  StmtPtr S = parseSimpleStmt();
  if (S && !Label.empty()) {
    S->Label = std::move(Label);
    if (!LabelLoc.isValid())
      S->Loc = LabelLoc;
  }
  return S;
}

StmtPtr Parser::parseSimpleStmt() {
  SourceLoc Loc = Cur.Loc;
  switch (Cur.Kind) {
  case TokenKind::KwSkip: {
    bump();
    expect(TokenKind::Semicolon, "after 'skip'");
    return std::make_unique<Stmt>(StmtKind::Skip, Loc);
  }
  case TokenKind::KwAssume: {
    bump();
    auto S = std::make_unique<Stmt>(StmtKind::Assume, Loc);
    expect(TokenKind::LParen, "after 'assume'");
    S->Cond = parseExpr();
    expect(TokenKind::RParen, "after assume condition");
    expect(TokenKind::Semicolon, "after 'assume'");
    return S;
  }
  case TokenKind::KwDead: {
    // `dead x, y;` — the TERMINATOR benchmarks' statement the paper had
    // to model by hand (Figure 2's iterative/schoose rows): the listed
    // variables are no longer used, so havoc them. Desugars to the
    // simultaneous nondeterministic assignment `x, y := *, *`, which the
    // rest of the pipeline (sema, CFG, encoders, oracles) already
    // handles.
    bump();
    auto S = std::make_unique<Stmt>(StmtKind::Assign, Loc);
    while (true) {
      if (!Cur.is(TokenKind::Identifier)) {
        expect(TokenKind::Identifier, "in dead variable list");
        return nullptr;
      }
      S->LhsNames.push_back(Cur.Text);
      bump();
      auto Nondet = std::make_unique<Expr>(ExprKind::Nondet, Cur.Loc);
      S->Exprs.push_back(std::move(Nondet));
      if (!Cur.is(TokenKind::Comma))
        break;
      bump();
    }
    expect(TokenKind::Semicolon, "after dead variable list");
    return S;
  }
  case TokenKind::KwGoto: {
    bump();
    auto S = std::make_unique<Stmt>(StmtKind::Goto, Loc);
    if (!Cur.is(TokenKind::Identifier)) {
      expect(TokenKind::Identifier, "after 'goto'");
      return nullptr;
    }
    S->CalleeName = Cur.Text; // Reused as the target label.
    bump();
    expect(TokenKind::Semicolon, "after goto target");
    return S;
  }
  case TokenKind::KwCall: {
    bump();
    auto S = std::make_unique<Stmt>(StmtKind::Call, Loc);
    if (!Cur.is(TokenKind::Identifier)) {
      expect(TokenKind::Identifier, "after 'call'");
      return nullptr;
    }
    S->CalleeName = Cur.Text;
    bump();
    expect(TokenKind::LParen, "after callee name");
    if (!Cur.is(TokenKind::RParen))
      parseExprList(S->Exprs);
    expect(TokenKind::RParen, "after call arguments");
    expect(TokenKind::Semicolon, "after call");
    return S;
  }
  case TokenKind::KwReturn: {
    bump();
    auto S = std::make_unique<Stmt>(StmtKind::Return, Loc);
    if (!Cur.is(TokenKind::Semicolon))
      parseExprList(S->Exprs);
    expect(TokenKind::Semicolon, "after return");
    return S;
  }
  case TokenKind::KwIf: {
    bump();
    auto S = std::make_unique<Stmt>(StmtKind::If, Loc);
    expect(TokenKind::LParen, "after 'if'");
    S->Cond = parseExpr();
    expect(TokenKind::RParen, "after if condition");
    expect(TokenKind::KwThen, "after if condition");
    parseStmtList(S->ThenBody, {TokenKind::KwElse, TokenKind::KwFi});
    if (consumeIf(TokenKind::KwElse))
      parseStmtList(S->ElseBody, {TokenKind::KwFi});
    expect(TokenKind::KwFi, "to close if");
    consumeIf(TokenKind::Semicolon);
    return S;
  }
  case TokenKind::KwWhile: {
    bump();
    auto S = std::make_unique<Stmt>(StmtKind::While, Loc);
    expect(TokenKind::LParen, "after 'while'");
    S->Cond = parseExpr();
    expect(TokenKind::RParen, "after while condition");
    expect(TokenKind::KwDo, "after while condition");
    parseStmtList(S->ThenBody, {TokenKind::KwOd});
    expect(TokenKind::KwOd, "to close while");
    consumeIf(TokenKind::Semicolon);
    return S;
  }
  case TokenKind::Identifier: {
    // Assignment: identlist ':=' (call | exprlist).
    auto S = std::make_unique<Stmt>(StmtKind::Assign, Loc);
    do {
      if (!Cur.is(TokenKind::Identifier)) {
        expect(TokenKind::Identifier, "in assignment target list");
        return nullptr;
      }
      S->LhsNames.push_back(Cur.Text);
      bump();
    } while (consumeIf(TokenKind::Comma));
    if (!expect(TokenKind::Assign, "in assignment"))
      return nullptr;
    if (Cur.is(TokenKind::Identifier) && Ahead.is(TokenKind::LParen)) {
      S->Kind = StmtKind::CallAssign;
      S->CalleeName = Cur.Text;
      bump();
      bump();
      if (!Cur.is(TokenKind::RParen))
        parseExprList(S->Exprs);
      expect(TokenKind::RParen, "after call arguments");
    } else {
      parseExprList(S->Exprs);
    }
    expect(TokenKind::Semicolon, "after assignment");
    return S;
  }
  default:
    Diags.error(Loc, std::string("expected statement, found '") +
                         Lexer::spelling(Cur.Kind) + "'");
    bump();
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

void Parser::parseExprList(std::vector<ExprPtr> &Out) {
  do {
    if (ExprPtr E = parseExpr())
      Out.push_back(std::move(E));
    else
      return;
  } while (consumeIf(TokenKind::Comma));
}

ExprPtr Parser::parseExpr() {
  ExprPtr Lhs = parseAndExpr();
  while (Cur.is(TokenKind::Pipe)) {
    SourceLoc Loc = Cur.Loc;
    bump();
    ExprPtr Rhs = parseAndExpr();
    auto E = std::make_unique<Expr>(ExprKind::Or, Loc);
    E->Lhs = std::move(Lhs);
    E->Rhs = std::move(Rhs);
    Lhs = std::move(E);
  }
  return Lhs;
}

ExprPtr Parser::parseAndExpr() {
  ExprPtr Lhs = parseUnaryExpr();
  while (Cur.is(TokenKind::Amp)) {
    SourceLoc Loc = Cur.Loc;
    bump();
    ExprPtr Rhs = parseUnaryExpr();
    auto E = std::make_unique<Expr>(ExprKind::And, Loc);
    E->Lhs = std::move(Lhs);
    E->Rhs = std::move(Rhs);
    Lhs = std::move(E);
  }
  return Lhs;
}

ExprPtr Parser::parseUnaryExpr() {
  if (Cur.is(TokenKind::Bang)) {
    SourceLoc Loc = Cur.Loc;
    bump();
    auto E = std::make_unique<Expr>(ExprKind::Not, Loc);
    E->Lhs = parseUnaryExpr();
    return E;
  }
  return parsePrimaryExpr();
}

ExprPtr Parser::parsePrimaryExpr() {
  SourceLoc Loc = Cur.Loc;
  switch (Cur.Kind) {
  case TokenKind::KwTrue:
    bump();
    return std::make_unique<Expr>(ExprKind::True, Loc);
  case TokenKind::KwFalse:
    bump();
    return std::make_unique<Expr>(ExprKind::False, Loc);
  case TokenKind::Star:
    bump();
    return std::make_unique<Expr>(ExprKind::Nondet, Loc);
  case TokenKind::Identifier: {
    auto E = std::make_unique<Expr>(ExprKind::Var, Loc);
    E->VarName = Cur.Text;
    bump();
    return E;
  }
  case TokenKind::LParen: {
    bump();
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  default:
    Diags.error(Loc, std::string("expected expression, found '") +
                         Lexer::spelling(Cur.Kind) + "'");
    // Produce a placeholder so parsing can continue.
    bump();
    return std::make_unique<Expr>(ExprKind::False, Loc);
  }
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> bp::parseProgram(std::string_view Input,
                                          DiagnosticEngine &Diags) {
  Parser P(Input, Diags);
  auto Prog = P.parseSequential();
  if (Diags.hasErrors())
    return nullptr;
  if (!analyzeProgram(*Prog, Diags) || Diags.hasErrors())
    return nullptr;
  return Prog;
}

std::unique_ptr<ConcurrentProgram>
bp::parseConcurrentProgram(std::string_view Input, DiagnosticEngine &Diags) {
  Parser P(Input, Diags);
  auto Conc = P.parseConcurrent();
  if (Diags.hasErrors())
    return nullptr;
  for (auto &Thread : Conc->Threads)
    if (!analyzeProgram(*Thread, Diags) || Diags.hasErrors())
      return nullptr;
  return Conc;
}
