//===- bench_drivers.cpp - Figure 2, SLAM driver rows ---------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
// Reproduces the SLAM block of Figure 2 with driver-shaped generated
// workloads at the four suite shapes (iscsiprt / floppy / negative drivers
// / iscsi). Shape to check: EF and EF-opt close to each other and to the
// baselines on these control-heavy but data-shallow programs; the final
// summary BDD stays small relative to LOC.
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "gen/Workloads.h"

using namespace getafix;
using namespace getafix::bench;

namespace {

struct Suite {
  const char *Name;
  gen::DriverParams Params;
  unsigned Seeds;
  /// The explicit Bebop stand-in enumerates the data domain (the real
  /// Bebop is BDD-based); on full driver frames it exceeds the paper's
  /// 30-minute timeout convention, so it only runs on the small suite
  /// and the other rows print "-" (the paper's timeout marker).
  bool RunBebop;
};

} // namespace

int main() {
  std::printf("=== Figure 2 / SLAM drivers (driver-shaped workloads) ===\n");
  std::printf("%-14s %6s %6s %7s %8s %8s %9s %9s %9s %9s\n", "suite", "LOC",
              "procs", "Reach?", "BDD", "EF(s)", "EFopt(s)", "moped(s)",
              "bebop(s)", "avg-iters");

  Suite Suites[] = {
      {"driver-small", {12, 4, 3, 8, true, 7}, 2, true},
      {"iscsiprt-like", {26, 5, 5, 12, true, 11}, 2, false},
      {"floppy-like", {34, 5, 5, 13, true, 22}, 2, false},
      {"driver-neg", {22, 5, 5, 10, false, 33}, 2, false},
      {"iscsi-like", {28, 6, 6, 12, true, 44}, 2, false},
  };

  for (const Suite &S : Suites) {
    double TEf = 0, TOpt = 0, TMoped = 0, TBebop = 0;
    uint64_t Nodes = 0, Loc = 0, Iters = 0;
    bool Reach = false;
    for (unsigned Seed = 0; Seed < S.Seeds; ++Seed) {
      gen::DriverParams P = S.Params;
      P.Seed += Seed;
      gen::Workload W = gen::driverProgram(P);
      ParsedProgram Parsed = parseOrDie(W.Source);
      Loc += countLoc(W.Source);
      EngineRow Ef = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split");
      EngineRow Opt = runEngine(Parsed.Cfg, W.TargetLabel, "ef-opt");
      EngineRow Moped = runEngine(Parsed.Cfg, W.TargetLabel, "moped");
      EngineRow Bebop;
      if (S.RunBebop)
        Bebop = runEngine(Parsed.Cfg, W.TargetLabel, "bebop");
      if (Ef.Reachable != W.ExpectReachable ||
          Opt.Reachable != W.ExpectReachable ||
          Moped.Reachable != W.ExpectReachable ||
          (S.RunBebop && Bebop.Reachable != W.ExpectReachable))
        std::fprintf(stderr, "WRONG ANSWER on %s\n", W.Name.c_str());
      Reach = W.ExpectReachable;
      TEf += Ef.Seconds;
      TOpt += Opt.Seconds;
      TMoped += Moped.Seconds;
      TBebop += Bebop.Seconds;
      Nodes += Ef.Nodes;
      Iters += Opt.Iterations;
    }
    unsigned N = S.Seeds;
    char BebopCol[32];
    if (S.RunBebop)
      std::snprintf(BebopCol, sizeof(BebopCol), "%9.3f", TBebop / N);
    else
      std::snprintf(BebopCol, sizeof(BebopCol), "%9s", "-");
    std::printf("%-14s %6llu %6u %7s %8llu %8.3f %9.3f %9.3f %s %9llu\n",
                S.Name, (unsigned long long)(Loc / N), S.Params.NumProcs + 1,
                Reach ? "Yes" : "No", (unsigned long long)(Nodes / N),
                TEf / N, TOpt / N, TMoped / N, BebopCol,
                (unsigned long long)(Iters / N));
  }
  return 0;
}
