//===- Protocol.h - getafixd line-oriented JSON protocol --------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the `getafixd` query server: one JSON object per
/// line in each direction. A request names a verb and its arguments; the
/// response is a single JSON object with `"ok"` plus verb-specific
/// payload. Malformed input produces an `{"ok":false,"error":...}` line
/// and the connection stays usable — a bad request must never take the
/// server down.
///
/// Requests:
///
///   {"op":"solve","program":PATH,"targets":["L1","L2"],
///    "witness":false,"engine":"ef-opt"?,"source":TEXT?,
///    "timeout_ms":N?,"node_budget":N?}
///   {"op":"stats"}
///   {"op":"evict","program":PATH?}        // no program = evict all
///   {"op":"ping"}
///   {"op":"shutdown"}
///
/// `source` inlines the program text instead of a server-side path (the
/// session is then keyed by a hash of the text). `engine` overrides the
/// server's default engine for this program's session. `timeout_ms` and
/// `node_budget` bound one request's solving work (clamped by the
/// server's `--max-timeout-ms` / `--node-budget` caps); a request that
/// trips a limit gets a structured error row with
/// `"status":"hit_deadline"|"hit_node_budget"|"cancelled"`, the session
/// stopped at a completed round boundary, and a retry under a larger
/// budget resumes bit-identically.
///
/// The JSON support here is deliberately minimal — objects, arrays,
/// strings with \uXXXX escapes, numbers, booleans, null — because the
/// repository takes no external dependencies. It is a wire format, not a
/// general-purpose JSON library.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_SERVER_PROTOCOL_H
#define GETAFIX_SERVER_PROTOCOL_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace getafix {
namespace server {

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

/// A JSON value. Build with the named constructors, chain `set`/`add`,
/// serialize with `dump()` (single line, suitable for the protocol).
/// Object fields keep insertion order; lookups are linear (protocol
/// objects are tiny).
class Json {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;

  static Json null() { return Json(); }
  static Json boolean(bool V) {
    Json J;
    J.K = Kind::Bool;
    J.BoolV = V;
    return J;
  }
  static Json number(double V) {
    Json J;
    J.K = Kind::Number;
    J.NumV = V;
    return J;
  }
  static Json str(std::string V) {
    Json J;
    J.K = Kind::String;
    J.StrV = std::move(V);
    return J;
  }
  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return BoolV; }
  double asNumber() const { return NumV; }
  const std::string &asString() const { return StrV; }
  const std::vector<Json> &items() const { return Items; }
  const std::vector<std::pair<std::string, Json>> &fields() const {
    return Fields;
  }

  /// Appends to an array; returns *this for chaining.
  Json &add(Json V) {
    Items.push_back(std::move(V));
    return *this;
  }
  /// Sets an object field (appends; protocol builders never set a key
  /// twice); returns *this for chaining.
  Json &set(const std::string &Key, Json V) {
    Fields.emplace_back(Key, std::move(V));
    return *this;
  }
  /// Object field lookup; null when absent or not an object.
  const Json *find(const std::string &Key) const;

  /// Single-line serialization. Numbers that hold integral values print
  /// without a decimal point (iteration counts, byte totals); others with
  /// six fractional digits (seconds).
  std::string dump() const;

  /// Parses \p Text (one complete JSON value, trailing whitespace
  /// allowed). False + \p Error on malformed input.
  static bool parse(const std::string &Text, Json &Out, std::string &Error);

private:
  Kind K = Kind::Null;
  bool BoolV = false;
  double NumV = 0.0;
  std::string StrV;
  std::vector<Json> Items;
  std::vector<std::pair<std::string, Json>> Fields;
};

//===----------------------------------------------------------------------===//
// Requests
//===----------------------------------------------------------------------===//

enum class Verb { Solve, Stats, Evict, Shutdown, Ping };

/// A decoded request line.
struct Request {
  Verb Op = Verb::Ping;
  std::string Program; ///< Server-side program path (solve/evict).
  std::string Source;  ///< Inline program text (alternative to Program).
  std::string Engine;  ///< Optional engine override for this program.
  std::vector<std::string> Targets; ///< Labels to solve (solve verb).
  bool Witness = false; ///< Request counterexample traces.
  /// Per-request wall-clock deadline in milliseconds; 0 = use the
  /// server's default (`--default-timeout-ms`, itself 0 = none). Clamped
  /// by `--max-timeout-ms`.
  uint64_t TimeoutMs = 0;
  /// Per-request BDD node budget; 0 = use the server's `--node-budget`
  /// cap (itself 0 = unlimited). Clamped by that cap.
  uint64_t NodeBudget = 0;
};

/// Decodes one request line. False + \p Error on malformed JSON, unknown
/// op, or missing/mistyped fields.
bool parseRequest(const std::string &Line, Request &Out, std::string &Error);

/// `{"ok":false,"error":Message}` — the response to any request that
/// could not be served.
Json errorResponse(const std::string &Message);

} // namespace server
} // namespace getafix

#endif // GETAFIX_SERVER_PROTOCOL_H
